package graph

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"bitflow/internal/baseline"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// bnSource wraps RandomWeights, recording which BN layers were queried.
type bnSource struct {
	RandomWeights
	asked []string
}

func (b *bnSource) BatchNorm(name string, channels int) (BNParams, error) {
	b.asked = append(b.asked, name)
	return b.RandomWeights.BatchNorm(name, channels)
}

func TestBatchNormNetworkBuildsAndFoldsAway(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 60}}
	net, err := NewBuilder("bn", 8, 8, 64, feat()).
		Conv3x3("c1", 64).
		BatchNorm("c1/bn").
		Pool("p1", 2, 2, 2).
		Dense("d1", 32).
		BatchNorm("d1/bn").
		Dense("d2", 5).
		BatchNorm("d2/bn"). // classifier BN → float affine
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws.asked) != 3 {
		t.Fatalf("BN queried %v", ws.asked)
	}
	// BN layers are folded, not materialized, and the conv→pool pair
	// fuses: layer list has no bn rows and one conv+pool node.
	if got := len(net.Layers()); got != 3 {
		t.Fatalf("%d layers, want 3 (conv+pool,dense,dense)", got)
	}
	out := net.Infer(workload.RandTensor(workload.NewRNG(61), 8, 8, 64))
	if len(out) != 5 {
		t.Fatal("bad output")
	}
}

// TestBatchNormMatchesFloatPipeline replays the BN network in float space.
func TestBatchNormMatchesFloatPipeline(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 62}}
	net, err := NewBuilder("bn", 6, 6, 64, feat()).
		Conv3x3("c1", 64).
		BatchNorm("c1/bn").
		Dense("d1", 7).
		BatchNorm("d1/bn").
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(63), 6, 6, 64)
	got := net.Infer(x)

	// Float replay: conv on binarized operands, batch-norm, sign,
	// flatten, dense, batch-norm (float affine output).
	const eps = 1e-5
	f1, _ := ws.ConvFilter("c1", 64, 3, 3, 64)
	bn1, _ := ws.BatchNorm("c1/bn", 64)
	raw := baseline.ConvDirect(x.Sign(), f1.Sign(), 1, 1, -1, 1)
	act := tensor.New(raw.H, raw.W, raw.C)
	for i := range raw.Data {
		c := i % raw.C
		sigma := math.Sqrt(float64(bn1.Variance[c]) + eps)
		v := float64(bn1.Gamma[c])*(float64(raw.Data[i])-float64(bn1.Mean[c]))/sigma + float64(bn1.Beta[c])
		if v >= 0 {
			act.Data[i] = 1
		} else {
			act.Data[i] = -1
		}
	}
	w1, _ := ws.DenseMatrix("d1", act.Len(), 7)
	bn2, _ := ws.BatchNorm("d1/bn", 7)
	dots := make([]float32, 7)
	baseline.DenseFloat(act.Data, w1.Sign(), dots, 1)
	want := make([]float32, 7)
	for c := range want {
		sigma := math.Sqrt(float64(bn2.Variance[c]) + eps)
		want[c] = float32(float64(bn2.Gamma[c])*(float64(dots[c])-float64(bn2.Mean[c]))/sigma + float64(bn2.Beta[c]))
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("logit %d: graph %v float replay %v", i, got[i], want[i])
		}
	}
}

func TestBatchNormErrors(t *testing.T) {
	ws := RandomWeights{Seed: 64}
	cases := map[string]*Builder{
		"bn first":         NewBuilder("e", 8, 8, 64, feat()).BatchNorm("x").Dense("d", 2),
		"bn after pool":    NewBuilder("e", 8, 8, 64, feat()).Conv3x3("c", 64).Pool("p", 2, 2, 2).BatchNorm("x").Dense("d", 2),
		"double bn":        NewBuilder("e", 8, 8, 64, feat()).Conv3x3("c", 64).BatchNorm("x").BatchNorm("y").Dense("d", 2),
		"bn after flatten": NewBuilder("e", 8, 8, 64, feat()).Conv3x3("c", 64).Flatten().BatchNorm("x").Dense("d", 2),
	}
	for name, b := range cases {
		if _, err := b.Build(ws); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// noBNSource implements only the base WeightSource.
type noBNSource struct{ RandomWeights }

func (noBNSource) BatchNorm(string, int) (BNParams, error) {
	panic("must not be called through the plain interface")
}

type plainSource struct{ rw RandomWeights }

func (p plainSource) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	return p.rw.ConvFilter(name, k, kh, kw, c)
}
func (p plainSource) DenseMatrix(name string, n, k int) (*tensor.Matrix, error) {
	return p.rw.DenseMatrix(name, n, k)
}

func TestBatchNormRequiresSource(t *testing.T) {
	_, err := NewBuilder("e", 8, 8, 64, feat()).
		Conv3x3("c", 64).
		BatchNorm("x").
		Dense("d", 2).
		Build(plainSource{RandomWeights{Seed: 65}})
	if err == nil {
		t.Fatal("expected error for missing BatchNormSource")
	}
}

// biasedSource adds deterministic biases to every layer.
type biasedSource struct {
	RandomWeights
}

func (b biasedSource) bias(name string, k int) []float32 {
	r := workload.NewRNG(b.Seed ^ uint64(len(name))*7919)
	out := make([]float32, k)
	for i := range out {
		out[i] = 3 * (2*r.Float32() - 1)
	}
	return out
}

func (b biasedSource) ConvBias(name string, k int) ([]float32, error)  { return b.bias(name, k), nil }
func (b biasedSource) DenseBias(name string, k int) ([]float32, error) { return b.bias(name, k), nil }

func TestBiasFoldingMatchesFloatPipeline(t *testing.T) {
	ws := biasedSource{RandomWeights{Seed: 66}}
	net, err := NewBuilder("biased", 6, 6, 64, feat()).
		Conv3x3("c1", 64).
		Dense("d1", 9).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(67), 6, 6, 64)
	got := net.Infer(x)

	f1, _ := ws.ConvFilter("c1", 64, 3, 3, 64)
	cb, _ := ws.ConvBias("c1", 64)
	raw := baseline.ConvDirect(x.Sign(), f1.Sign(), 1, 1, -1, 1)
	act := tensor.New(raw.H, raw.W, raw.C)
	for i := range raw.Data {
		if raw.Data[i]+cb[i%raw.C] >= 0 {
			act.Data[i] = 1
		} else {
			act.Data[i] = -1
		}
	}
	w1, _ := ws.DenseMatrix("d1", act.Len(), 9)
	db, _ := ws.DenseBias("d1", 9)
	want := make([]float32, 9)
	baseline.DenseFloat(act.Data, w1.Sign(), want, 1)
	for c := range want {
		want[c] += db[c]
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3 {
			t.Fatalf("logit %d: graph %v float replay %v", i, got[i], want[i])
		}
	}
}

func TestBiasThenBatchNormRejected(t *testing.T) {
	type both struct {
		biasedSource
	}
	ws := both{biasedSource{RandomWeights{Seed: 68}}}
	_, err := NewBuilder("e", 8, 8, 64, feat()).
		Conv3x3("c", 64).
		BatchNorm("c/bn").
		Dense("d", 2).
		Build(ws)
	if err == nil {
		t.Fatal("bias + batch-norm on the same layer must be rejected")
	}
	if !errors.Is(err, err) { // sanity: err is a plain error
		t.Fatal("unexpected error wrapping")
	}
}

func TestBatchNormNetworkSaveLoadRoundtrip(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 69}}
	net, err := NewBuilder("bn-rt", 8, 8, 64, feat()).
		Conv3x3("c1", 64).
		BatchNorm("c1/bn").
		Dense("d1", 16).
		BatchNorm("d1/bn").
		Dense("d2", 4).
		BatchNorm("d2/bn").
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, feat())
	if err != nil {
		t.Fatal(err)
	}
	x := workload.RandTensor(workload.NewRNG(70), 8, 8, 64)
	want := net.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: loaded %v original %v — activations lost in serialization", i, got[i], want[i])
		}
	}
}

func TestBatchNormNetworkClone(t *testing.T) {
	ws := &bnSource{RandomWeights: RandomWeights{Seed: 71}}
	net, err := NewBuilder("bn-clone", 8, 8, 64, feat()).
		Conv3x3("c1", 64).
		BatchNorm("c1/bn").
		Dense("d1", 4).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	x := workload.RandTensor(workload.NewRNG(72), 8, 8, 64)
	want := net.Infer(x)
	got := clone.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs in clone", i)
		}
	}
}
