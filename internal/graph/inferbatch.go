package graph

import (
	"fmt"
	"math"

	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/faultinject"
	"bitflow/internal/tensor"
)

// This file implements the batched inference path behind internal/batch:
// a Network owns a pool of "lanes" — clones sharing its read-only packed
// weights, each with a private activation-buffer chain (margins included,
// so the zero-cost-padding layout carries over unchanged) — and InferBatch
// runs a layer-major sweep across them: every image's activations for a
// layer are in place before the layer's kernels run, so the layer's packed
// filter words stream through the cache once per batch instead of once per
// image (the engine-level scheduling daBNN-style systems get their
// throughput from). Per-image arithmetic is identical to Infer, so batched
// logits are bit-identical to sequential ones.

// BatchInputError reports which item of a batch failed validation. The
// forward pass does not run when InferBatch returns one; callers doing
// per-request validation (internal/batch) check items individually before
// ever assembling a batch, so a single bad input fails alone.
type BatchInputError struct {
	Index int
	Err   error
}

func (e *BatchInputError) Error() string {
	return fmt.Sprintf("graph: batch item %d: %v", e.Index, e.Err)
}

func (e *BatchInputError) Unwrap() error { return e.Err }

// CheckInputFinite is CheckInput plus a NaN/Inf scan — the validation the
// batched path applies per item, so one malformed tensor can be rejected
// on its own without touching the rest of a batch.
func (n *Network) CheckInputFinite(x *tensor.Tensor) error {
	if err := n.CheckInput(x); err != nil {
		return err
	}
	for i, v := range x.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("graph: input value %d is not finite", i)
		}
	}
	return nil
}

// batchWiring pre-collects, for one layer, the lane buffer slices the
// batched operator paths consume, so forwardLayerBatch hands them over
// without assembling anything per batch. Exactly one family of fields is
// populated, matching the layer's type.
type batchWiring struct {
	convIns, convOuts []*bitpack.Packed

	denseIns    [][]uint64
	densePacked [][]uint64
	denseFloat  [][]float32
	denseTmp    *core.DenseBatchScratch
}

// EnsureBatch grows the network's lane pool to serve batches of up to b
// images without further allocation. Lane 0 is the network itself; extra
// lanes are clones sharing the packed weights. The pool only ever grows —
// a batcher sizes it once to its max-batch at startup, the "grown once"
// buffer scheme of the batched path.
func (n *Network) EnsureBatch(b int) {
	grown := len(n.wiring) == 0
	for len(n.lanes) < b {
		if len(n.lanes) == 0 {
			n.lanes = append(n.lanes, n)
			continue
		}
		n.lanes = append(n.lanes, n.Clone())
		grown = true
	}
	if grown {
		n.rewireBatch()
	}
}

// rewireBatch rebuilds the per-layer wiring for the current lane pool.
func (n *Network) rewireBatch() {
	B := len(n.lanes)
	n.wiring = make([]batchWiring, len(n.layers))
	for li, base := range n.layers {
		w := &n.wiring[li]
		switch base.(type) {
		case *convLayer:
			w.convIns = make([]*bitpack.Packed, B)
			w.convOuts = make([]*bitpack.Packed, B)
			for b, lane := range n.lanes {
				cl := lane.layers[li].(*convLayer)
				w.convIns[b], w.convOuts[b] = cl.in, cl.out
			}
		case *fusedConvPoolLayer:
			w.convIns = make([]*bitpack.Packed, B)
			w.convOuts = make([]*bitpack.Packed, B)
			for b, lane := range n.lanes {
				fl := lane.layers[li].(*fusedConvPoolLayer)
				w.convIns[b], w.convOuts[b] = fl.in, fl.out
			}
		case *denseLayer:
			w.denseIns = make([][]uint64, B)
			w.densePacked = make([][]uint64, B)
			w.denseFloat = make([][]float32, B)
			w.denseTmp = &core.DenseBatchScratch{}
			for b, lane := range n.lanes {
				dl := lane.layers[li].(*denseLayer)
				w.denseIns[b] = dl.in
				w.densePacked[b] = dl.packedOut
				w.denseFloat[b] = dl.floatOut
			}
			w.denseTmp.Ensure(base.(*denseLayer).op, B)
		}
	}
}

// MaxBatch reports the current lane-pool capacity (0 before the first
// EnsureBatch/InferBatch call).
func (n *Network) MaxBatch() int { return len(n.lanes) }

// InferBatch runs one forward pass over all of xs and returns one logits
// slice per input, with InferBatch(xs)[i] bit-identical to Infer(xs[i]).
// Inputs are validated up front: a nil, misshapen, or malformed tensor
// fails the call with a *BatchInputError naming the offending index and
// no forward pass runs. Like Infer, InferBatch is not safe for concurrent
// use on the same Network.
func (n *Network) InferBatch(xs []*tensor.Tensor) ([][]float32, error) {
	B := len(xs)
	if B == 0 {
		return nil, fmt.Errorf("graph: empty batch")
	}
	for i, x := range xs {
		if err := n.CheckInputFinite(x); err != nil {
			//bitflow:alloc-ok validation failure path; no forward pass runs
			return nil, &BatchInputError{Index: i, Err: err}
		}
	}
	if B == 1 {
		// nil ctx: keep any cancellation carried by the attached
		// execution context, matching the B>1 layer-sweep below.
		out, err := n.InferContext(nil, xs[0])
		if err != nil {
			//bitflow:alloc-ok failure path; the error escapes
			return nil, &BatchInputError{Index: 0, Err: err}
		}
		//bitflow:alloc-ok result wrapper escapes to the caller
		return [][]float32{out}, nil
	}
	n.EnsureBatch(B)
	ec := n.execCtx()
	lanes := n.lanes[:B]
	for b, lane := range lanes {
		lane.feedInput(xs[b])
	}
	for li := range n.layers {
		if err := ec.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.GraphLayer.Fire(ec.Context(), n.layers[li].name(), li); err != nil {
			return nil, err
		}
		n.forwardLayerBatch(li, lanes, ec)
	}
	//bitflow:alloc-ok result slices escape to the caller; lane buffers are reused by the next batch
	outs := make([][]float32, B)
	for b, lane := range lanes {
		//bitflow:alloc-ok result slices escape to the caller
		outs[b] = make([]float32, len(lane.output))
		copy(outs[b], lane.output)
	}
	return outs, nil
}

// forwardLayerBatch runs layer li across all lanes. Conv and dense layers
// use the batched operator paths (weights stream once per batch); pool and
// the mixed-precision float stem are weightless or float-bound and run
// per lane.
func (n *Network) forwardLayerBatch(li int, lanes []*Network, ec *exec.Ctx) {
	B := len(lanes)
	w := &n.wiring[li]
	switch l := n.layers[li].(type) {
	case *convLayer:
		if l.press {
			l.op.ForwardPackedBatchCompressed(w.convIns[:B], w.convOuts[:B], ec)
			return
		}
		l.op.ForwardPackedBatch(w.convIns[:B], w.convOuts[:B], ec)
	case *fusedConvPoolLayer:
		if l.press {
			l.conv.ForwardFusedBatchCompressed(w.convIns[:B], l.pool, w.convOuts[:B], ec)
			return
		}
		l.conv.ForwardFusedBatch(w.convIns[:B], l.pool, w.convOuts[:B], ec)
	case *denseLayer:
		switch {
		case l.floatOut != nil && l.press:
			l.op.ForwardFloatBatchCompressed(w.denseIns[:B], w.denseFloat[:B], w.denseTmp, ec)
		case l.floatOut != nil:
			l.op.ForwardFloatBatch(w.denseIns[:B], w.denseFloat[:B], w.denseTmp, ec)
		case l.press:
			l.op.ForwardPackedBatchCompressed(w.denseIns[:B], w.densePacked[:B], w.denseTmp, ec)
		default:
			l.op.ForwardPackedBatch(w.denseIns[:B], w.densePacked[:B], w.denseTmp, ec)
		}
	default:
		for _, lane := range lanes {
			lane.layers[li].forward(ec)
		}
	}
}
