package graph

import (
	"fmt"

	"bitflow/internal/kernels"
)

// Kernel-compression planning (Silfa & Arnau, "Exploiting Kernel
// Compression on BNNs"): packed binary weight banks repeat 64-bit words
// across output channels, and operators whose duplication ratio clears
// kernels.CompressMinRatio carry a CompressPlan compiled at
// construction (see core.NewConvPacked / core.NewDensePacked). The pass
// below is the graph half: it marks, per layer, whether this network's
// forward actually takes the compressed path. The flag lives on the
// layer — not the operator — so lanes and clones sharing the read-only
// operators can run either path, which is what the differential harness
// (CloneUncompressed) compares against.
//
// Like fusion, compression is pure runtime planning: it runs at build
// *and* load time off the packed weights, the serialized format carries
// no plan metadata, and save→load keeps artifacts byte-identical. The
// compressed accumulators sum the same integer popcounts as the
// uncompressed kernels and finish through the same epilogue, so logits
// are bit-identical either way.

// LayerCompression reports one layer's duplication analysis and whether
// this network's forward runs it compressed.
type LayerCompression struct {
	// Layer and Kind identify the node ("conv3.1", "conv", …). Fused
	// conv+pool nodes report under their joined name.
	Layer string
	Kind  string
	// Channels × Positions is the packed bank geometry; DistinctWords of
	// the TotalWords survive deduplication.
	Channels, Positions       int
	TotalWords, DistinctWords int
	// Ratio is TotalWords/DistinctWords; Selected reports whether the
	// forward pass takes the compressed path (ratio cleared the
	// threshold and planning was not disabled).
	Ratio    float64
	Selected bool
}

// Compression reports the per-layer kernel-compression analysis of every
// weighted binary layer (the mixed-precision float stem has no packed
// bank and is omitted).
func (n *Network) Compression() []LayerCompression {
	out := make([]LayerCompression, 0, len(n.layers))
	for _, l := range n.layers {
		var st kernels.CompressStats
		var selected bool
		switch t := l.(type) {
		case *convLayer:
			st, selected = t.op.CompressionStats(), t.press
		case *fusedConvPoolLayer:
			st, selected = t.conv.CompressionStats(), t.press
		case *denseLayer:
			st, selected = t.op.CompressionStats(), t.press
		default:
			continue
		}
		out = append(out, LayerCompression{
			Layer: l.name(), Kind: l.kind(),
			Channels: st.Channels, Positions: st.Positions,
			TotalWords: st.TotalWords, DistinctWords: st.DistinctWords,
			Ratio: st.Ratio(), Selected: selected,
		})
	}
	return out
}

// CompressedLayers counts the layers whose forward runs the compressed
// path — the headline number bitflow-info and /model report.
func (n *Network) CompressedLayers() int {
	c := 0
	for _, lc := range n.Compression() {
		if lc.Selected {
			c++
		}
	}
	return c
}

// Compressed reports whether the compression planning pass ran
// (regardless of whether any layer cleared the threshold).
func (n *Network) Compressed() bool { return !n.uncompressed }

// press is the planning pass: mark every layer whose shared operator
// carries a compression plan. Runs at build and load time (and inside
// Clone, so lanes inherit the parent's selection).
func (n *Network) press() {
	for _, l := range n.layers {
		switch t := l.(type) {
		case *convLayer:
			t.press = t.op.Compression() != nil
		case *fusedConvPoolLayer:
			t.press = t.conv.Compression() != nil
		case *denseLayer:
			t.press = t.op.Compression() != nil
		}
	}
}

// RefreshCompression re-runs the selection pass, picking up plans forced
// or cleared on the shared operators via SetCompression after the
// network was built — a hook for the differential tests and benchmarks.
// On an uncompressed network (DisableCompression / CloneUncompressed)
// it is a no-op.
func (n *Network) RefreshCompression() {
	if n.uncompressed {
		return
	}
	n.press()
}

// DisableCompression turns off the kernel-compression planning pass:
// every layer keeps the streaming uncompressed kernels. Compression
// never changes logits — this exists for the compressed-vs-uncompressed
// differential harness and apples-to-apples benchmarking, not as a
// production knob.
func (b *Builder) DisableCompression() *Builder {
	b.noPress = true
	return b
}

// CloneUncompressed is Clone with the compression planner disabled: an
// independent buffer chain over the *same* packed weights, running the
// uncompressed kernels everywhere. It inherits the fusion plan, so a
// fused network compares fused-compressed against fused-uncompressed —
// one variable at a time.
func (n *Network) CloneUncompressed() *Network {
	b := &Builder{name: n.Name, feat: n.Feat, inH: n.InH, inW: n.InW, inC: n.InC,
		specs: n.arch, noFuse: n.unfused, noPress: true}
	clone, err := b.buildFrom(&reuseSource{layers: n.layers})
	if err != nil {
		panic(fmt.Sprintf("graph: CloneUncompressed of a compiled network failed: %v", err))
	}
	clone.Threads = n.Threads
	clone.ec = n.ec
	return clone
}
