package graph

import (
	"bytes"
	"errors"
	"testing"

	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

// fuzzTopology decodes an arbitrary byte string into a small valid
// network: the first bytes pick the input dims, the rest append layers
// (conv3x3 / pool) until a stop byte or the budget runs out, and a final
// dense classifier closes the graph. The decoder is total — every byte
// string yields SOME topology — so the fuzzer explores structure, not
// parser crashes.
func fuzzTopology(seed uint64, shape []byte) (*Builder, int, int, int) {
	at := 0
	next := func() byte {
		if at >= len(shape) {
			return 0
		}
		b := shape[at]
		at++
		return b
	}
	inH := 4 + int(next()%5)*2 // 4..12, even
	inW := 4 + int(next()%5)*2
	inC := 64 << (next() % 2) // 64 or 128: one or two packed words
	b := NewBuilder("fuzz", inH, inW, inC, feat())

	h, w := inH, inW
	convs := 0
	for layers := 0; layers < 4; layers++ {
		op := next()
		switch op % 3 {
		case 0:
			k := 64 << (op >> 2 & 1)
			b.Conv3x3(fuzzName("c", layers), k)
			convs++
		case 1:
			if h < 4 || w < 4 {
				continue
			}
			b.Pool(fuzzName("p", layers), 2, 2, 2)
			h, w = h/2, w/2
		default:
			layers = 4
		}
	}
	units := 2 + int(next()%9) // 2..10 classes
	b.Dense("out", units)
	return b, inH, inW, inC
}

func fuzzName(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}

// FuzzLoadArbitraryBytes pins the loader's untrusted-input contract:
// feeding ANY byte string to Load must return a network or a typed
// error (*FormatError / *ChecksumError) — never panic, never allocate
// unboundedly. The seed corpus includes a valid artifact plus targeted
// corruptions of its header, specs, and footer.
func FuzzLoadArbitraryBytes(f *testing.F) {
	valid := func() []byte {
		b, _, _, _ := fuzzTopology(1, []byte{0})
		net, err := b.Build(RandomWeights{Seed: 1})
		if err != nil {
			f.Fatalf("building seed network: %v", err)
		}
		var buf bytes.Buffer
		if _, err := net.Save(&buf); err != nil {
			f.Fatalf("saving seed network: %v", err)
		}
		return buf.Bytes()
	}()
	// A second artifact whose topology contains a fusable conv→pool pair,
	// so the corpus exercises the loader's fusion planning pass too.
	validFused := func() []byte {
		b, _, _, _ := fuzzTopology(1, []byte{2, 2, 0, 0, 1, 2, 3})
		net, err := b.Build(RandomWeights{Seed: 2})
		if err != nil {
			f.Fatalf("building fused seed network: %v", err)
		}
		if net.Fusion().Pairs == 0 {
			f.Fatal("fused seed network has no fused pairs")
		}
		var buf bytes.Buffer
		if _, err := net.Save(&buf); err != nil {
			f.Fatalf("saving fused seed network: %v", err)
		}
		return buf.Bytes()
	}()
	f.Add([]byte{})
	f.Add([]byte("BFLW"))
	f.Add(valid)
	f.Add(validFused)
	f.Add(validFused[:len(validFused)*2/3]) // truncated mid-weights
	f.Add(valid[:len(valid)-16]) // legacy: no footer
	f.Add(valid[:len(valid)/2])  // truncated payload
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)/3] ^= 0x40
	f.Add(corrupt)
	header := append([]byte(nil), valid[:64]...)
	f.Add(header)
	f.Fuzz(func(t *testing.T, data []byte) {
		net, info, err := LoadWithInfo(bytes.NewReader(data), feat())
		if err != nil {
			var fe *FormatError
			var ce *ChecksumError
			if !errors.As(err, &fe) && !errors.As(err, &ce) {
				t.Fatalf("untyped load error %T: %v", err, err)
			}
			return
		}
		if net == nil || info == nil {
			t.Fatal("nil network/info without error")
		}
		// A network the loader accepted must actually run.
		x := workload.RandTensor(workload.NewRNG(7), net.InH, net.InW, net.InC)
		if _, ierr := net.InferChecked(x); ierr != nil {
			t.Fatalf("loaded network cannot infer: %v", ierr)
		}
	})
}

// FuzzSerializeRoundTrip pins the serialization contract: for an
// arbitrary small topology, save→load→Infer must be bit-identical to the
// original network's logits — including when the model is loaded under a
// narrower kernel tier than it was built with. The seed corpus runs as
// part of every plain `go test ./internal/graph`.
func FuzzSerializeRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte{0})
	f.Add(uint64(2), []byte{1, 2, 3})
	f.Add(uint64(3), []byte{7, 0, 9, 4})
	f.Add(uint64(130), []byte{2, 2, 1, 0, 1, 8})
	f.Add(uint64(9), []byte{255, 128, 64, 32, 16, 8, 4})
	f.Add(uint64(42), []byte{4, 4, 1, 0, 0, 1, 0, 200})
	f.Fuzz(func(t *testing.T, seed uint64, shape []byte) {
		builder, inH, inW, inC := fuzzTopology(seed, shape)
		net, err := builder.Build(RandomWeights{Seed: seed})
		if err != nil {
			t.Skipf("topology rejected by Build (fine for a fuzzer): %v", err)
		}

		x := workload.RandTensor(workload.NewRNG(seed+1), inH, inW, inC)
		want := net.Infer(x)

		var buf bytes.Buffer
		wrote, err := net.Save(&buf)
		if err != nil {
			t.Fatalf("Save: %v", err)
		}
		if wrote != int64(buf.Len()) {
			t.Fatalf("Save reported %d bytes, wrote %d", wrote, buf.Len())
		}

		// Load twice: once under the native tier, once forced down to the
		// 64-bit scalar tier — packed weights are tier-independent, so both
		// must reproduce the original logits exactly.
		tiers := map[string]sched.Features{
			"native": feat(),
			"narrow": feat().WithMaxWidth(kernels.W64),
		}
		for name, ft := range tiers {
			loaded, err := Load(bytes.NewReader(buf.Bytes()), ft)
			if err != nil {
				t.Fatalf("%s: Load of a just-saved model: %v", name, err)
			}
			if len(loaded.Layers()) != len(net.Layers()) {
				t.Fatalf("%s: loaded %d layers, saved %d", name, len(loaded.Layers()), len(net.Layers()))
			}
			got := loaded.Infer(x)
			if len(got) != len(want) {
				t.Fatalf("%s: loaded net emits %d logits, original %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: logit %d: loaded %v, original %v (seed=%d shape=%v)",
						name, i, got[i], want[i], seed, shape)
				}
			}
		}
	})
}
