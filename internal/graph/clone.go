package graph

import (
	"fmt"

	"bitflow/internal/core"
	"bitflow/internal/sched"
)

// Clone builds an independent copy of the network that *shares* the
// packed weights (operators are read-only after construction) but owns a
// fresh activation buffer chain. Use one clone per goroutine for
// concurrent inference — Infer on a single Network is not thread-safe,
// but clones never contend:
//
//	worker := net.Clone()
//	go func() { _ = worker.Infer(x) }()
func (n *Network) Clone() *Network {
	// Clones inherit the original's data-flow plan: an unfused network's
	// lanes stay unfused, so fused-vs-unfused comparisons compare like
	// with like even through EnsureBatch.
	b := &Builder{name: n.Name, feat: n.Feat, inH: n.InH, inW: n.InW, inC: n.InC,
		specs: n.arch, noFuse: n.unfused, noPress: n.uncompressed}
	clone, err := b.buildFrom(&reuseSource{layers: n.layers})
	if err != nil {
		// The architecture already compiled once; a failure here is a
		// programming error, not a user input problem.
		panic(fmt.Sprintf("graph: Clone of a compiled network failed: %v", err))
	}
	clone.Threads = n.Threads
	clone.ec = n.ec
	return clone
}

// reuseSource hands back the original network's operators in layer order.
type reuseSource struct {
	layers []layer
	idx    int
}

func (rs *reuseSource) next() layer {
	for rs.idx < len(rs.layers) {
		l := rs.layers[rs.idx]
		rs.idx++
		switch l.(type) {
		case *convLayer, *denseLayer, *floatConvLayer, *fusedConvPoolLayer:
			return l
		}
	}
	return nil
}

func (rs *reuseSource) conv(name string, shape sched.ConvShape, plan sched.Plan) (*core.Conv, error) {
	// A conv spec may be backed by a plain conv node or by a fused
	// conv+pool node whose conv half carries the weights.
	switch l := rs.next().(type) {
	case *convLayer:
		if l.lname == name {
			return l.op, nil
		}
	case *fusedConvPoolLayer:
		if l.convName == name {
			return l.conv, nil
		}
	}
	return nil, fmt.Errorf("graph: clone source out of sync at conv %q", name)
}

func (rs *reuseSource) dense(name string, shape sched.FCShape, plan sched.Plan) (*core.Dense, error) {
	l := rs.next()
	dl, ok := l.(*denseLayer)
	if !ok || dl.lname != name {
		return nil, fmt.Errorf("graph: clone source out of sync at dense %q", name)
	}
	return dl.op, nil
}

func (rs *reuseSource) floatConv(name string, shape sched.ConvShape) (*core.FloatConv, error) {
	l := rs.next()
	fl, ok := l.(*floatConvLayer)
	if !ok || fl.lname != name {
		return nil, fmt.Errorf("graph: clone source out of sync at float conv %q", name)
	}
	return fl.op, nil
}

func (rs *reuseSource) convBias(name string, k int) ([]float32, error)  { return nil, nil }
func (rs *reuseSource) denseBias(name string, k int) ([]float32, error) { return nil, nil }

// batchNorm reports "already baked": the shared operators carry their
// folded activations.
func (rs *reuseSource) batchNorm(name string, channels int) (*BNParams, error) { return nil, nil }
