package graph

import (
	"context"
	"fmt"
	"time"

	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/faultinject"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// layer is one executable node of the static graph. Buffers are wired at
// build time; forward only computes.
type layer interface {
	name() string
	kind() string
	outDims() string
	forward(ec *exec.Ctx)
	// weightStats returns (scalar weight count, bytes of weight storage
	// actually held — packed bits for binary layers, float32 for the
	// mixed-precision first layer); zero for weightless layers.
	weightStats() (int64, int64)
	// parallelUnits is the layer's multi-core work-unit count (fused
	// OutH·OutW for conv/pool, K for dense) — the granularity the
	// paper's thread split works at, used by scaling models.
	parallelUnits() int
}

// Network is a compiled binary neural network: operators with pre-packed
// weights plus a pre-allocated buffer chain. Infer is not safe for
// concurrent use on the same Network (buffers are shared state); clone
// the network per goroutine instead.
type Network struct {
	Name          string
	InH, InW, InC int
	Classes       int
	Feat          sched.Features

	// Threads is the legacy worker-count knob. When no execution context
	// is attached via SetExec, Infer derives one from it on the shared
	// default pool (exec.Threads), so pre-exec callers and benches keep
	// working unchanged. With SetExec, the attached context wins and
	// Threads is ignored.
	Threads int

	// ec is the attached execution context (SetExec); nil means "derive
	// from Threads".
	ec *exec.Ctx

	layers []layer
	input  *bitpack.Packed
	// inputFloat replaces input when the first layer is a FloatConv
	// (mixed precision): the network then consumes raw floats.
	inputFloat *tensor.Tensor
	output     []float32
	// arch records the builder specs the network was compiled from, so
	// Save can serialize the architecture alongside the packed weights.
	arch []spec

	activationWords int64 // pre-allocated packed activation words

	// fusion records what the conv→pool fusion planning pass collapsed
	// (see fuse.go); unfused marks a network built with the planner
	// disabled (Builder.DisableFusion / CloneUnfused), so clones inherit
	// the same data-flow plan.
	fusion  FusionStats
	unfused bool

	// uncompressed marks a network built with the kernel-compression
	// planner disabled (Builder.DisableCompression / CloneUncompressed);
	// see press.go.
	uncompressed bool

	// lanes is the batched-inference buffer pool (see inferbatch.go):
	// lane 0 is the network itself, the rest are clones sharing the
	// packed weights. Grown once by EnsureBatch, never shrunk.
	lanes []*Network

	// wiring holds the per-layer lane buffer slices InferBatch hands the
	// batched operator paths, pre-collected by EnsureBatch so the
	// layer-major sweep allocates nothing per batch.
	wiring []batchWiring
}

// LayerInfo describes one layer for reporting.
type LayerInfo struct {
	Name    string
	Kind    string
	OutDims string
}

// Layers lists the network's layers in execution order.
func (n *Network) Layers() []LayerInfo {
	out := make([]LayerInfo, len(n.layers))
	for i, l := range n.layers {
		out[i] = LayerInfo{Name: l.name(), Kind: l.kind(), OutDims: l.outDims()}
	}
	return out
}

// Infer runs one forward pass on x (shape must match InH×InW×InC) and
// returns the Classes logits. The returned slice is freshly allocated.
// Infer panics on a shape mismatch; servers handling untrusted input
// should call InferChecked instead.
func (n *Network) Infer(x *tensor.Tensor) []float32 {
	out, err := n.InferChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// CheckInput validates that x matches the network's compiled input shape,
// returning a descriptive error on mismatch. It never panics.
func (n *Network) CheckInput(x *tensor.Tensor) error {
	if x == nil {
		return fmt.Errorf("graph: nil input, network expects %dx%dx%d", n.InH, n.InW, n.InC)
	}
	if x.H != n.InH || x.W != n.InW || x.C != n.InC {
		return fmt.Errorf("graph: input %v, network expects %dx%dx%d", x, n.InH, n.InW, n.InC)
	}
	if len(x.Data) != x.H*x.W*x.C {
		return fmt.Errorf("graph: input data length %d, shape %v wants %d",
			len(x.Data), x, x.H*x.W*x.C)
	}
	return nil
}

// SetExec attaches a prepared execution context: dispatch pool, thread
// budget, and optional per-layer observer. Servers build one base context
// for the whole process and attach it to every replica, so the process
// shares a single worker pool no matter how many replicas run. Passing
// nil detaches, falling back to the Threads shim.
func (n *Network) SetExec(ec *exec.Ctx) { n.ec = ec }

// Exec returns the attached execution context, or nil when the network is
// running on the legacy Threads shim.
func (n *Network) Exec() *exec.Ctx { return n.ec }

// execCtx resolves the context a forward pass runs under: the attached
// one, else the Threads-derived compatibility shim.
func (n *Network) execCtx() *exec.Ctx {
	if n.ec != nil {
		return n.ec
	}
	return exec.Threads(n.Threads)
}

// InferChecked is Infer with the shape panic converted into a returned
// error, so untrusted user input can never reach a panic path. A non-nil
// error means no forward pass ran.
func (n *Network) InferChecked(x *tensor.Tensor) ([]float32, error) {
	return n.InferContext(context.Background(), x)
}

// InferContext is InferChecked under a cancellation context: the pass
// checks ctx between layers and stops within one layer's latency of
// cancellation, returning ctx's error. An abandoned pass leaves the
// activation buffers in a consistent state — every layer rewrites its
// output in full — so the network is immediately reusable and the next
// Infer is bit-identical to an uninterrupted one. If an observer is
// attached (exec.Ctx.WithObserver), it receives one timing per layer.
//
// A non-nil ctx replaces any context carried by the attached execution
// context for this pass; a nil ctx leaves the attached one in force.
func (n *Network) InferContext(ctx context.Context, x *tensor.Tensor) ([]float32, error) {
	if err := n.CheckInput(x); err != nil {
		return nil, err
	}
	ec := n.execCtx()
	if ctx != nil {
		ec = ec.WithContext(ctx)
	}
	if err := ec.Err(); err != nil {
		return nil, err
	}
	obs := ec.Observer()
	var t0 time.Time
	if obs != nil {
		t0 = time.Now()
	}
	n.feedInput(x)
	if obs != nil {
		obs("input", "pack", time.Since(t0))
	}
	for i, l := range n.layers {
		if err := ec.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.GraphLayer.Fire(ec.Context(), l.name(), i); err != nil {
			return nil, err
		}
		if obs != nil {
			t0 = time.Now()
		}
		l.forward(ec)
		if obs != nil {
			obs(l.name(), l.kind(), time.Since(t0))
		}
	}
	//bitflow:alloc-ok result slice escapes to the caller; returning a view of n.output would race with the next inference
	out := make([]float32, len(n.output))
	copy(out, n.output)
	return out, nil
}

// LayerTiming records one layer's wall-clock contribution to a timed pass.
type LayerTiming struct {
	Name     string
	Kind     string
	Duration time.Duration
	// Units is the layer's parallel work-unit count (0 for the serial
	// input-pack stage).
	Units int
}

// InferTimed runs one forward pass and reports per-layer wall-clock times
// (the input binarize+pack is reported as layer "input").
func (n *Network) InferTimed(x *tensor.Tensor) ([]float32, []LayerTiming) {
	ec := n.execCtx()
	//bitflow:alloc-ok InferTimed is a diagnostic entry point, not the serving path; the timings report escapes
	timings := make([]LayerTiming, 0, len(n.layers)+1)
	t0 := time.Now()
	n.feedInput(x)
	//bitflow:alloc-ok diagnostic path, capacity reserved above
	timings = append(timings, LayerTiming{Name: "input", Kind: "pack", Duration: time.Since(t0)})
	for _, l := range n.layers {
		t0 = time.Now()
		l.forward(ec)
		//bitflow:alloc-ok diagnostic path, capacity reserved above
		timings = append(timings, LayerTiming{
			Name: l.name(), Kind: l.kind(), Duration: time.Since(t0),
			Units: l.parallelUnits(),
		})
	}
	//bitflow:alloc-ok result slice escapes to the caller
	out := make([]float32, len(n.output))
	copy(out, n.output)
	return out, timings
}

func (n *Network) feedInput(x *tensor.Tensor) {
	if x.H != n.InH || x.W != n.InW || x.C != n.InC {
		panic(fmt.Sprintf("graph: input %v, network expects %dx%dx%d", x, n.InH, n.InW, n.InC))
	}
	if n.inputFloat != nil {
		copy(n.inputFloat.Data, x.Data)
		return
	}
	bitpack.PackTensorInto(x, n.input)
}

// ModelSize reports the storage cost of the network's weights.
type ModelSize struct {
	// Weights is the number of scalar weights.
	Weights int64
	// FullPrecisionBytes is Weights × 4 (float32 storage).
	FullPrecisionBytes int64
	// BinarizedBytes is the weight storage actually held: bit-packed
	// words for binary layers plus float32 bytes for any mixed-precision
	// float layer.
	BinarizedBytes int64
}

// Compression returns the full-precision/binarized storage ratio
// (≈32× for weight-dominated networks — paper Table V).
func (m ModelSize) Compression() float64 {
	if m.BinarizedBytes == 0 {
		return 0
	}
	return float64(m.FullPrecisionBytes) / float64(m.BinarizedBytes)
}

// ModelSize sums weight storage over all layers.
func (n *Network) ModelSize() ModelSize {
	var s ModelSize
	for _, l := range n.layers {
		w, stored := l.weightStats()
		s.Weights += w
		s.FullPrecisionBytes += w * 4
		s.BinarizedBytes += stored
	}
	return s
}

// ActivationBytes reports the pre-allocated packed activation storage —
// the memory the static-graph analysis reserved up front.
func (n *Network) ActivationBytes() int64 { return n.activationWords * 8 }

// ---------------------------------------------------------------------
// Concrete layers.

type convLayer struct {
	lname   string
	op      *core.Conv
	in, out *bitpack.Packed
	// press selects the kernel-compressed forward (see press.go). It is
	// per layer, not per operator: clones sharing op can run either path.
	press bool
}

func (l *convLayer) name() string { return l.lname }
func (l *convLayer) kind() string { return "conv" }
func (l *convLayer) outDims() string {
	s := l.op.Shape
	return fmt.Sprintf("%dx%dx%d", s.OutH, s.OutW, s.OutC)
}
func (l *convLayer) forward(ec *exec.Ctx) {
	if l.press {
		l.op.ForwardPackedCompressed(l.in, l.out, ec)
		return
	}
	l.op.ForwardPacked(l.in, l.out, ec)
}
func (l *convLayer) parallelUnits() int { return l.op.Shape.OutH * l.op.Shape.OutW }
func (l *convLayer) weightStats() (int64, int64) {
	s := l.op.Shape
	return int64(s.K) * int64(s.KH) * int64(s.KW) * int64(s.InC), 8 * int64(len(l.op.Filter().Words))
}

type floatConvLayer struct {
	lname string
	op    *core.FloatConv
	in    *tensor.Tensor // owned copy of the network's float input
	out   *bitpack.Packed
}

func (l *floatConvLayer) name() string { return l.lname }
func (l *floatConvLayer) kind() string { return "floatconv" }
func (l *floatConvLayer) outDims() string {
	s := l.op.Shape
	return fmt.Sprintf("%dx%dx%d", s.OutH, s.OutW, s.OutC)
}
func (l *floatConvLayer) forward(ec *exec.Ctx) { l.op.Forward(l.in, l.out, ec) }
func (l *floatConvLayer) parallelUnits() int   { return l.op.Shape.OutH * l.op.Shape.OutW }
func (l *floatConvLayer) weightStats() (int64, int64) {
	s := l.op.Shape
	w := int64(s.K) * int64(s.KH) * int64(s.KW) * int64(s.InC)
	return w, 4 * w // kept in float32
}

type poolLayer struct {
	lname   string
	op      *core.Pool
	in, out *bitpack.Packed
}

func (l *poolLayer) name() string { return l.lname }
func (l *poolLayer) kind() string { return "pool" }
func (l *poolLayer) outDims() string {
	s := l.op.Shape
	return fmt.Sprintf("%dx%dx%d", s.OutH, s.OutW, s.OutC)
}
func (l *poolLayer) forward(ec *exec.Ctx)        { l.op.Forward(l.in, l.out, ec) }
func (l *poolLayer) weightStats() (int64, int64) { return 0, 0 }
func (l *poolLayer) parallelUnits() int          { return l.op.Shape.OutH * l.op.Shape.OutW }

type denseLayer struct {
	lname string
	op    *core.Dense
	in    []uint64

	// Exactly one of packedOut / floatOut is set: hidden dense layers
	// fuse the sign activation and write bits; the final classifier
	// emits float logits.
	packedOut []uint64
	floatOut  []float32

	// tmp is the K-length pre-activation scratch, allocated at build
	// time (per clone — the shared operator carries no mutable state).
	tmp []int32

	// press selects the kernel-compressed forward (see press.go).
	press bool
}

func (l *denseLayer) name() string    { return l.lname }
func (l *denseLayer) kind() string    { return "fc" }
func (l *denseLayer) outDims() string { return fmt.Sprintf("%d", l.op.Shape.K) }
func (l *denseLayer) forward(ec *exec.Ctx) {
	switch {
	case l.floatOut != nil && l.press:
		l.op.ForwardFloatCompressed(l.in, l.floatOut, l.tmp, ec)
	case l.floatOut != nil:
		l.op.ForwardFloat(l.in, l.floatOut, l.tmp, ec)
	case l.press:
		l.op.ForwardPackedCompressed(l.in, l.packedOut, l.tmp, ec)
	default:
		l.op.ForwardPacked(l.in, l.packedOut, l.tmp, ec)
	}
}
func (l *denseLayer) weightStats() (int64, int64) {
	s := l.op.Shape
	return int64(s.N) * int64(s.K), 8 * int64(len(l.op.Weights().Words))
}
func (l *denseLayer) parallelUnits() int { return l.op.Shape.K }
