package graph

import (
	"bytes"
	"testing"

	"bitflow/internal/core"
	"bitflow/internal/kernels"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// dupWeights is a WeightSource producing adversarially duplicated banks
// for chosen layers: layer weights repeat one of `bases` base patterns
// per output channel, so the packed words duplicate with ratio ≥
// K/bases and the layer crosses the compression threshold. Unlisted
// layers fall through to plain RandomWeights (ratio ≈ 1 for wide
// random banks).
type dupWeights struct {
	RandomWeights
	dup map[string]int // layer name → base pattern count
}

func (d dupWeights) ConvFilter(name string, k, kh, kw, c int) (*tensor.Filter, error) {
	f, err := d.RandomWeights.ConvFilter(name, k, kh, kw, c)
	if bases := d.dup[name]; err == nil && bases > 0 {
		per := kh * kw * c
		for i := bases; i < k; i++ {
			copy(f.Data[i*per:(i+1)*per], f.Data[(i%bases)*per:(i%bases+1)*per])
		}
	}
	return f, err
}

func (d dupWeights) DenseMatrix(name string, n, k int) (*tensor.Matrix, error) {
	m, err := d.RandomWeights.DenseMatrix(name, n, k)
	if bases := d.dup[name]; err == nil && bases > 0 {
		// Output unit k's weights are column k; repeating columns
		// duplicates the packed-transposed rows the plan clusters.
		for row := 0; row < n; row++ {
			for col := bases; col < k; col++ {
				m.Data[row*k+col] = m.Data[row*k+col%bases]
			}
		}
	}
	return m, err
}

// straddleNet builds a mixed-precision net whose layers straddle the
// compression-ratio threshold: a float stem (never compressed), a
// duplicated conv→pool pair (fuses AND compresses), a random conv→pool
// pair (fuses, stays uncompressed), a duplicated hidden dense, and a
// random classifier.
func straddleNet(t *testing.T, seed uint64) *Network {
	t.Helper()
	ws := dupWeights{
		RandomWeights: RandomWeights{Seed: seed},
		dup:           map[string]int{"cdup": 4, "ddup": 4},
	}
	net, err := NewBuilder("straddle", 16, 16, 3, feat()).
		FloatConv("stem", 64, 3, 3, 1, 1).
		Conv3x3("cdup", 64).
		Pool("p1", 2, 2, 2).
		Conv3x3("crand", 64).
		Pool("p2", 2, 2, 2).
		Dense("ddup", 64).
		Dense("out", 9).
		Build(ws)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestCompressionPlanSelectivity pins the per-layer compressed split of
// the straddle net: exactly the duplicated layers select, the random
// and float layers do not, and the report carries the measured ratios.
func TestCompressionPlanSelectivity(t *testing.T) {
	net := straddleNet(t, 80)
	report := net.Compression()
	want := map[string]bool{
		"cdup+p1":  true,
		"crand+p2": false,
		"ddup":     true,
		"out":      false,
	}
	if len(report) != len(want) {
		t.Fatalf("report has %d entries (%+v), want %d", len(report), report, len(want))
	}
	for _, lc := range report {
		sel, ok := want[lc.Layer]
		if !ok {
			t.Fatalf("unexpected report entry %+v", lc)
		}
		if lc.Selected != sel {
			t.Errorf("layer %s: selected=%v want %v (ratio %.2f)", lc.Layer, lc.Selected, sel, lc.Ratio)
		}
		if lc.TotalWords == 0 || lc.DistinctWords == 0 || lc.Ratio == 0 {
			t.Errorf("layer %s: unmeasured stats %+v", lc.Layer, lc)
		}
		if sel && lc.Ratio < kernels.CompressMinRatio {
			t.Errorf("layer %s selected below threshold: ratio %.2f", lc.Layer, lc.Ratio)
		}
		if !sel && lc.Ratio >= kernels.CompressMinRatio {
			t.Errorf("layer %s not selected above threshold: ratio %.2f", lc.Layer, lc.Ratio)
		}
	}
	if got := net.CompressedLayers(); got != 2 {
		t.Errorf("CompressedLayers = %d, want 2", got)
	}
	if !net.Compressed() {
		t.Error("planned network reports Compressed() = false")
	}
	un := net.CloneUncompressed()
	if un.Compressed() || un.CompressedLayers() != 0 {
		t.Errorf("uncompressed clone: Compressed=%v CompressedLayers=%d", un.Compressed(), un.CompressedLayers())
	}
	// The analysis is still measured on the uncompressed clone.
	for _, lc := range un.Compression() {
		if lc.Selected {
			t.Errorf("uncompressed clone layer %s runs compressed", lc.Layer)
		}
	}
}

// TestTinyVGGAutoCompression pins the real-topology case: conv1.1 reads
// C=3 inputs, so each packed tap word has ≤ 2³ possible values and the
// 64-filter bank compresses ≥ 8× — selected without any weight rigging.
func TestTinyVGGAutoCompression(t *testing.T) {
	net, err := TinyVGG(feat(), RandomWeights{Seed: 81})
	if err != nil {
		t.Fatal(err)
	}
	report := net.Compression()
	if len(report) == 0 || report[0].Layer != "conv1.1" {
		t.Fatalf("unexpected report head: %+v", report)
	}
	first := report[0]
	if !first.Selected || first.Ratio < 8 {
		t.Errorf("conv1.1: selected=%v ratio=%.2f, want selected with ratio ≥ 8", first.Selected, first.Ratio)
	}
}

// TestCompressionLogitsBitIdentical is the acceptance pin: compressed
// and uncompressed plans produce bit-identical logits over Infer and
// InferBatch for B = 1..8, on fused and unfused data-flow, including
// the mixed-precision float stem.
func TestCompressionLogitsBitIdentical(t *testing.T) {
	fused := straddleNet(t, 82)
	variants := map[string]*Network{
		"fused":           fused,
		"unfused":         fused.CloneUnfused(),
		"tinyvgg-autosel": mustTinyVGG(t, 83),
	}
	for name, pressed := range variants {
		if pressed.CompressedLayers() == 0 {
			t.Fatalf("%s: no compressed layers — the differential would be vacuous", name)
		}
		plain := pressed.CloneUncompressed()
		r := workload.NewRNG(84)
		xs := make([]*tensor.Tensor, 8)
		for i := range xs {
			xs[i] = workload.RandTensor(r, pressed.InH, pressed.InW, pressed.InC)
		}
		for _, x := range xs {
			want := plain.Infer(x)
			got := pressed.Infer(x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Infer logit %d: compressed %v uncompressed %v", name, i, got[i], want[i])
				}
			}
		}
		for B := 1; B <= 8; B++ {
			wantB, err := plain.InferBatch(xs[:B])
			if err != nil {
				t.Fatalf("%s: uncompressed batch %d: %v", name, B, err)
			}
			gotB, err := pressed.InferBatch(xs[:B])
			if err != nil {
				t.Fatalf("%s: compressed batch %d: %v", name, B, err)
			}
			for b := range wantB {
				for i := range wantB[b] {
					if gotB[b][i] != wantB[b][i] {
						t.Fatalf("%s: batch %d item %d logit %d differs", name, B, b, i)
					}
				}
			}
		}
	}
}

func mustTinyVGG(t *testing.T, seed uint64) *Network {
	t.Helper()
	net, err := TinyVGG(feat(), RandomWeights{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestCompressionSerializationCompat pins that the plan is pure runtime
// state: compressed and uncompressed networks serialize byte-identical
// (no plan metadata), and loading re-plans compression with logits
// bit-identical to the uncompressed build.
func TestCompressionSerializationCompat(t *testing.T) {
	pressed := straddleNet(t, 85)
	plain := pressed.CloneUncompressed()

	var pb, ub bytes.Buffer
	if _, err := pressed.Save(&pb); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Save(&ub); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Bytes(), ub.Bytes()) {
		t.Fatal("compressed and uncompressed networks serialize differently")
	}

	loaded, err := Load(bytes.NewReader(pb.Bytes()), feat())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CompressedLayers() != pressed.CompressedLayers() {
		t.Fatalf("loaded plans %d compressed layers, build had %d",
			loaded.CompressedLayers(), pressed.CompressedLayers())
	}
	x := workload.RandTensor(workload.NewRNG(86), pressed.InH, pressed.InW, pressed.InC)
	want := plain.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d: loaded-compressed %v, uncompressed %v", i, got[i], want[i])
		}
	}
}

// TestCompressionBatchLanesInherit pins that EnsureBatch lanes follow
// the base network's compression plan — and that an uncompressed
// network's lanes stay uncompressed.
func TestCompressionBatchLanesInherit(t *testing.T) {
	pressed := straddleNet(t, 87)
	plain := pressed.CloneUncompressed()
	pressed.EnsureBatch(3)
	plain.EnsureBatch(3)
	for i, lane := range pressed.lanes {
		if lane.CompressedLayers() != pressed.CompressedLayers() {
			t.Fatalf("compressed lane %d has %d compressed layers, want %d",
				i, lane.CompressedLayers(), pressed.CompressedLayers())
		}
	}
	for i, lane := range plain.lanes {
		if lane.CompressedLayers() != 0 {
			t.Fatalf("uncompressed lane %d has %d compressed layers", i, lane.CompressedLayers())
		}
	}
}

// TestRefreshCompression pins the test/bench hook: forcing a plan on a
// shared operator takes effect after RefreshCompression, and clearing
// it reverts — while an uncompressed network ignores refreshes.
func TestRefreshCompression(t *testing.T) {
	net := mixedNet(t, 88) // all wide random banks: nothing auto-selects
	if net.CompressedLayers() != 0 {
		t.Fatalf("mixed net unexpectedly auto-selected %d layers", net.CompressedLayers())
	}
	var target *core.Conv
	for _, l := range net.layers {
		if fl, ok := l.(*fusedConvPoolLayer); ok {
			target = fl.conv
			break
		}
	}
	if target == nil {
		t.Fatal("no fused conv found")
	}
	// Force a plan below threshold, refresh, and compare logits against
	// an uncompressed clone — the low-duplication compressed path must
	// still be bit-exact end to end.
	pf := target.Filter()
	fstride := len(pf.Words) / target.Shape.K
	plan := kernels.BuildCompressPlan(pf.Words, target.Shape.K, fstride)
	if err := target.SetCompression(plan); err != nil {
		t.Fatal(err)
	}
	net.RefreshCompression()
	if net.CompressedLayers() != 1 {
		t.Fatalf("forced plan not picked up: %d compressed layers", net.CompressedLayers())
	}
	plain := net.CloneUncompressed()
	x := workload.RandTensor(workload.NewRNG(89), net.InH, net.InW, net.InC)
	want := plain.Infer(x)
	got := net.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forced-plan logit %d: compressed %v uncompressed %v", i, got[i], want[i])
		}
	}
	if err := target.SetCompression(nil); err != nil {
		t.Fatal(err)
	}
	net.RefreshCompression()
	if net.CompressedLayers() != 0 {
		t.Fatal("cleared plan still selected after refresh")
	}
}
