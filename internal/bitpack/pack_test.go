package bitpack

import (
	"testing"
	"testing/quick"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func TestWordsFor(t *testing.T) {
	cases := map[int]int{1: 1, 63: 1, 64: 1, 65: 2, 128: 2, 129: 3, 512: 8}
	for c, want := range cases {
		if got := WordsFor(c); got != want {
			t.Errorf("WordsFor(%d) = %d want %d", c, got, want)
		}
	}
}

func TestPackUnpackRoundtrip(t *testing.T) {
	r := workload.NewRNG(20)
	for _, tc := range []struct{ h, w, c, wpp int }{
		{1, 1, 1, 1}, {3, 4, 64, 1}, {2, 2, 100, 2}, {5, 3, 3, 1}, {4, 4, 512, 8},
	} {
		in := workload.PM1Tensor(r, tc.h, tc.w, tc.c)
		p := PackTensor(in, tc.wpp, 0, 0)
		back := Unpack(p)
		if !in.Equal(back) {
			t.Errorf("roundtrip %dx%dx%d wpp=%d mismatch", tc.h, tc.w, tc.c, tc.wpp)
		}
		if !p.TailClean() {
			t.Errorf("tail not clean for %dx%dx%d wpp=%d", tc.h, tc.w, tc.c, tc.wpp)
		}
	}
}

// TestPackRoundtripQuick is the property-based version over arbitrary
// small shapes and margins.
func TestPackRoundtripQuick(t *testing.T) {
	f := func(seed uint64, hh, ww, cc, mm uint8) bool {
		h := int(hh)%6 + 1
		w := int(ww)%6 + 1
		c := int(cc)%130 + 1
		margin := int(mm) % 3
		r := workload.NewRNG(seed)
		in := workload.PM1Tensor(r, h, w, c)
		p := PackTensor(in, WordsFor(c)+int(mm)%2, margin, margin)
		if !Unpack(p).Equal(in) {
			return false
		}
		return p.TailClean() && p.MarginsAllZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignSemantics(t *testing.T) {
	// Paper Equation 3: x >= 0 ↦ +1 (bit 1), x < 0 ↦ −1 (bit 0).
	// Zero must binarize to +1.
	in := tensor.New(1, 1, 3)
	in.Set(0, 0, 0, 0)
	in.Set(0, 0, 1, -0.5)
	in.Set(0, 0, 2, 2.5)
	p := PackTensor(in, 1, 0, 0)
	if p.Bit(0, 0, 0) != 1 {
		t.Error("sign(0) must pack to bit 1")
	}
	if p.Bit(0, 0, 1) != 0 {
		t.Error("sign(-0.5) must pack to bit 0")
	}
	if p.Bit(0, 0, 2) != 1 {
		t.Error("sign(2.5) must pack to bit 1")
	}
}

func TestPackTensorIntoMarginsUntouched(t *testing.T) {
	r := workload.NewRNG(21)
	in := workload.PM1Tensor(r, 3, 3, 64)
	p := NewPacked(3, 3, 64, 1, 1, 1)
	PackTensorInto(in, p)
	if !p.MarginsAllZero() {
		t.Error("margins dirtied by PackTensorInto")
	}
	if !Unpack(p).Equal(in) {
		t.Error("interior mismatch")
	}
}

func TestSetBitAndBit(t *testing.T) {
	p := NewPacked(2, 2, 70, 2, 0, 0)
	p.SetBit(1, 1, 69, 1)
	if p.Bit(1, 1, 69) != 1 {
		t.Error("SetBit(1) lost")
	}
	p.SetBit(1, 1, 69, 0)
	if p.Bit(1, 1, 69) != 0 {
		t.Error("SetBit(0) lost")
	}
}

func TestPackPixel(t *testing.T) {
	p := NewPacked(1, 2, 65, 2, 0, 0)
	vals := make([]float32, 65)
	for i := range vals {
		if i%3 == 0 {
			vals[i] = -1
		} else {
			vals[i] = 1
		}
	}
	p.PackPixel(0, 1, vals)
	for c := 0; c < 65; c++ {
		want := uint64(1)
		if c%3 == 0 {
			want = 0
		}
		if p.Bit(0, 1, c) != want {
			t.Fatalf("bit %d = %d want %d", c, p.Bit(0, 1, c), want)
		}
	}
	if !p.TailClean() {
		t.Error("tail dirty after PackPixel")
	}
}

func TestNewPackedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"wpp too small": func() { NewPacked(1, 1, 65, 1, 0, 0) },
		"negative dim":  func() { NewPacked(-1, 1, 1, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMarginsAllZeroDetectsDirt(t *testing.T) {
	p := NewPacked(2, 2, 64, 1, 1, 1)
	if !p.MarginsAllZero() {
		t.Fatal("fresh buffer should have zero margins")
	}
	// Dirty a margin pixel via negative coordinates.
	p.PixelWords(-1, 0)[0] = 1
	if p.MarginsAllZero() {
		t.Error("dirty margin not detected")
	}
}

func TestTailCleanDetectsDirt(t *testing.T) {
	p := NewPacked(1, 1, 65, 2, 0, 0)
	if !p.TailClean() {
		t.Fatal("fresh buffer should have clean tails")
	}
	p.PixelWords(0, 0)[1] |= 1 << 5 // lane 69 ≥ C=65
	if p.TailClean() {
		t.Error("dirty tail not detected")
	}
}
