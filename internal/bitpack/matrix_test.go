package bitpack

import (
	"testing"
	"testing/quick"

	"bitflow/internal/workload"
)

func TestPackMatrixBTMatchesStaged(t *testing.T) {
	r := workload.NewRNG(30)
	for _, tc := range []struct{ n, k int }{
		{64, 1}, {64, 5}, {128, 3}, {100, 7}, {65, 2}, {256, 16}, {1, 1},
	} {
		b := workload.RandMatrix(r, tc.n, tc.k)
		wpr := WordsFor(tc.n)
		fused := PackMatrixBT(b, wpr)
		staged := StagedPackMatrixBT(b, wpr)
		if fused.K != staged.K || fused.N != staged.N || fused.WPR != staged.WPR {
			t.Fatalf("n=%d k=%d: shape mismatch %v vs %v", tc.n, tc.k, fused, staged)
		}
		for i := range fused.Words {
			if fused.Words[i] != staged.Words[i] {
				t.Fatalf("n=%d k=%d: word %d differs: %x vs %x", tc.n, tc.k, i, fused.Words[i], staged.Words[i])
			}
		}
	}
}

// TestPackMatrixBTQuick: fused transform == staged transform, as a
// property over arbitrary small matrices and extra word padding.
func TestPackMatrixBTQuick(t *testing.T) {
	f := func(seed uint64, nn, kk, extra uint8) bool {
		n := int(nn)%200 + 1
		k := int(kk)%20 + 1
		wpr := WordsFor(n) + int(extra)%3
		r := workload.NewRNG(seed)
		b := workload.RandMatrix(r, n, k)
		fused := PackMatrixBT(b, wpr)
		staged := StagedPackMatrixBT(b, wpr)
		for i := range fused.Words {
			if fused.Words[i] != staged.Words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackMatrixBTTransposition(t *testing.T) {
	// Row k of the packed matrix must be column k of sign(B).
	r := workload.NewRNG(31)
	n, k := 70, 4
	b := workload.RandMatrix(r, n, k)
	pm := PackMatrixBT(b, WordsFor(n))
	for ki := 0; ki < k; ki++ {
		row := UnpackVector(pm.RowWords(ki), n)
		for ni := 0; ni < n; ni++ {
			want := float32(1)
			if b.At(ni, ki) < 0 {
				want = -1
			}
			if row[ni] != want {
				t.Fatalf("col %d lane %d: got %v want %v", ki, ni, row[ni], want)
			}
		}
	}
}

func TestPackVectorRoundtrip(t *testing.T) {
	r := workload.NewRNG(32)
	for _, n := range []int{1, 63, 64, 65, 127, 500} {
		v := make([]float32, n)
		for i := range v {
			v[i] = r.PM1()
		}
		words := PackVector(v, WordsFor(n)+1)
		back := UnpackVector(words, n)
		for i := range v {
			if v[i] != back[i] {
				t.Fatalf("n=%d lane %d: got %v want %v", n, i, back[i], v[i])
			}
		}
		// Trailing lanes must be zero.
		for lane := n; lane < len(words)*64; lane++ {
			if words[lane/64]>>(uint(lane)%64)&1 != 0 {
				t.Fatalf("n=%d: tail lane %d set", n, lane)
			}
		}
	}
}

func TestPackVectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PackVector with short wpr did not panic")
		}
	}()
	PackVector(make([]float32, 65), 1)
}

func TestPackedFilterRoundtrip(t *testing.T) {
	r := workload.NewRNG(33)
	f := workload.PM1Filter(r, 5, 3, 3, 100)
	pf := PackFilter(f, WordsFor(100))
	back := UnpackFilter(pf)
	for i := range f.Data {
		if f.Data[i] != back.Data[i] {
			t.Fatalf("filter roundtrip differs at %d", i)
		}
	}
}

func TestFilterWordsContiguity(t *testing.T) {
	// FilterWords(k) must cover exactly taps (k, *, *) in (i, j) order.
	r := workload.NewRNG(34)
	f := workload.PM1Filter(r, 3, 2, 2, 64)
	pf := PackFilter(f, 1)
	for k := 0; k < 3; k++ {
		block := pf.FilterWords(k)
		idx := 0
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				tap := pf.TapWords(k, i, j)
				for w := range tap {
					if block[idx] != tap[w] {
						t.Fatalf("filter %d tap (%d,%d) word %d not contiguous", k, i, j, w)
					}
					idx++
				}
			}
		}
	}
}
