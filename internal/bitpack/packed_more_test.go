package bitpack

import (
	"testing"
	"testing/quick"

	"bitflow/internal/workload"
)

func TestPixelOffsetMarginAddressing(t *testing.T) {
	p := NewPacked(3, 4, 64, 1, 2, 2)
	// Interior (0,0) sits margin rows/cols in.
	if off := p.PixelOffset(0, 0); off != (2*(4+4)+2)*1 {
		t.Errorf("interior offset %d", off)
	}
	// Top-left margin corner is word 0.
	if off := p.PixelOffset(-2, -2); off != 0 {
		t.Errorf("margin corner offset %d", off)
	}
	// Bottom-right margin pixel is the last word.
	if off := p.PixelOffset(3+1, 4+1); off != len(p.Words)-1 {
		t.Errorf("last margin offset %d vs %d", off, len(p.Words)-1)
	}
}

func TestRowCoversFullPaddedWidth(t *testing.T) {
	p := NewPacked(2, 3, 64, 1, 1, 1)
	row := p.Row(0)
	if len(row) != (3+2)*1 {
		t.Errorf("row length %d", len(row))
	}
	// Writing through the row slice must land in the buffer.
	row[0] = 7
	if p.PixelWords(0, -1)[0] != 7 {
		t.Error("Row does not alias the left margin pixel")
	}
}

// TestPackPixelMatchesPackTensorInto: per-pixel packing is the same
// transform as whole-tensor packing.
func TestPackPixelMatchesPackTensorInto(t *testing.T) {
	f := func(seed uint64, cc uint8) bool {
		c := int(cc)%130 + 1
		r := workload.NewRNG(seed)
		in := workload.RandTensor(r, 2, 3, c)
		wpp := WordsFor(c) + 1
		whole := NewPacked(2, 3, c, wpp, 0, 0)
		PackTensorInto(in, whole)
		perPixel := NewPacked(2, 3, c, wpp, 0, 0)
		for h := 0; h < 2; h++ {
			for w := 0; w < 3; w++ {
				perPixel.PackPixel(h, w, in.Pixel(h, w))
			}
		}
		for i := range whole.Words {
			if whole.Words[i] != perPixel.Words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameShape(t *testing.T) {
	a := NewPacked(2, 2, 64, 1, 1, 1)
	b := NewPacked(2, 2, 64, 1, 1, 1)
	if !a.SameShape(b) {
		t.Error("identical shapes reported different")
	}
	c := NewPacked(2, 2, 64, 2, 1, 1)
	if a.SameShape(c) {
		t.Error("different wpp reported same")
	}
}

func TestZeroClearsEverything(t *testing.T) {
	r := workload.NewRNG(7)
	p := PackTensor(workload.PM1Tensor(r, 3, 3, 64), 1, 1, 1)
	p.Zero()
	for _, w := range p.Words {
		if w != 0 {
			t.Fatal("Zero left data")
		}
	}
}

func TestPackPixelPanicsOnWrongLength(t *testing.T) {
	p := NewPacked(1, 1, 64, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	p.PackPixel(0, 0, make([]float32, 63))
}

func TestPackTensorIntoPanicsOnMismatch(t *testing.T) {
	r := workload.NewRNG(8)
	in := workload.PM1Tensor(r, 2, 2, 64)
	p := NewPacked(2, 2, 128, 2, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	PackTensorInto(in, p)
}
