// Package bitpack implements BitFlow's binarization and channel-dimension
// bit-packing (paper §III-B, Fig. 3, Table II/III).
//
// Values are encoded as in the paper: feature value +1 ↦ bit 1 and
// −1 ↦ bit 0. A tensor with C channels packs each pixel's channel vector
// into ⌈C/64⌉ (or more, if the kernel scheduler asks for width padding)
// 64-bit words, "pressing" the tensor by a factor of 32–64 and making the
// inner product of two channel vectors computable with XOR + popcount
// (Equation 1).
//
// Packed buffers can carry spatial margins so that zero padding is
// realized at zero cost (paper Fig. 5): the producer writes into the
// interior of a pre-allocated buffer whose margin words stay all-zero,
// which is exactly a border of −1 features, the value BNN bit-level
// padding actually pads.
package bitpack

import "fmt"

// WordBits is the number of channel lanes per packed word.
const WordBits = 64

// WordsFor returns the minimum number of 64-bit words needed to hold c
// channel bits.
func WordsFor(c int) int { return (c + WordBits - 1) / WordBits }

// Packed is a bit-packed NHWC activation tensor (batch 1).
//
// The buffer covers (H+2*MarginH)×(W+2*MarginW) pixels; the logical
// (interior) tensor is H×W. Each pixel owns WPP consecutive words; bits
// [0, C) of that word group are channel values, bits [C, WPP*64) are
// always zero ("pad extra zeros", paper §III-B rule 4).
type Packed struct {
	H, W int // interior (logical) spatial extent
	C    int // true channel count
	WPP  int // words per pixel, ≥ WordsFor(C)

	MarginH, MarginW int // margin pixels on each side (zero-cost padding)

	// RowStride is the number of words from one padded row to the next:
	// (W + 2*MarginW) * WPP.
	RowStride int

	// Words holds (H + 2*MarginH) * RowStride words. The interior pixel
	// (h, w) starts at word ((h+MarginH)*(W+2*MarginW) + (w+MarginW)) * WPP.
	Words []uint64
}

// NewPacked allocates a zeroed packed tensor with the given interior
// extent, channel count, words per pixel and margins.
func NewPacked(h, w, c, wpp, marginH, marginW int) *Packed {
	if wpp < WordsFor(c) {
		panic(fmt.Sprintf("bitpack: wpp %d < WordsFor(%d)=%d", wpp, c, WordsFor(c)))
	}
	if h < 0 || w < 0 || c < 0 || marginH < 0 || marginW < 0 {
		panic("bitpack: negative dimension")
	}
	paddedW := w + 2*marginW
	paddedH := h + 2*marginH
	return &Packed{
		H: h, W: w, C: c, WPP: wpp,
		MarginH: marginH, MarginW: marginW,
		RowStride: paddedW * wpp,
		Words:     make([]uint64, paddedH*paddedW*wpp),
	}
}

// PixelOffset returns the index in Words of interior pixel (h, w). h and w
// may range over [-MarginH, H+MarginH) and [-MarginW, W+MarginW): negative
// and overflowing coordinates address margin pixels.
func (p *Packed) PixelOffset(h, w int) int {
	return (h+p.MarginH)*p.RowStride + (w+p.MarginW)*p.WPP
}

// PixelWords returns the WPP-word slice of interior pixel (h, w), aliasing
// the underlying buffer. Margin pixels are addressable with negative /
// overflowing coordinates, as for PixelOffset.
func (p *Packed) PixelWords(h, w int) []uint64 {
	off := p.PixelOffset(h, w)
	return p.Words[off : off+p.WPP : off+p.WPP]
}

// Row returns the word slice covering the full padded row that contains
// interior row h, starting at the row's leftmost margin pixel.
func (p *Packed) Row(h int) []uint64 {
	off := (h + p.MarginH) * p.RowStride
	return p.Words[off : off+p.RowStride : off+p.RowStride]
}

// Bit reports channel bit c of interior pixel (h, w).
func (p *Packed) Bit(h, w, c int) uint64 {
	words := p.PixelWords(h, w)
	return (words[c/WordBits] >> (uint(c) % WordBits)) & 1
}

// SetBit sets channel bit c of interior pixel (h, w) to v (0 or 1).
func (p *Packed) SetBit(h, w, c int, v uint64) {
	words := p.PixelWords(h, w)
	mask := uint64(1) << (uint(c) % WordBits)
	if v != 0 {
		words[c/WordBits] |= mask
	} else {
		words[c/WordBits] &^= mask
	}
}

// Zero clears the whole buffer, margins included.
func (p *Packed) Zero() { clear(p.Words) }

// SameShape reports whether p and q agree in every structural field.
func (p *Packed) SameShape(q *Packed) bool {
	return p.H == q.H && p.W == q.W && p.C == q.C && p.WPP == q.WPP &&
		p.MarginH == q.MarginH && p.MarginW == q.MarginW
}

// MarginsAllZero reports whether every margin word is zero. The graph
// executor's invariant tests use this to prove that zero-cost padding
// margins are never clobbered.
func (p *Packed) MarginsAllZero() bool {
	paddedW := p.W + 2*p.MarginW
	paddedH := p.H + 2*p.MarginH
	for ph := 0; ph < paddedH; ph++ {
		for pw := 0; pw < paddedW; pw++ {
			interior := ph >= p.MarginH && ph < p.MarginH+p.H &&
				pw >= p.MarginW && pw < p.MarginW+p.W
			if interior {
				continue
			}
			off := (ph*paddedW + pw) * p.WPP
			for _, wd := range p.Words[off : off+p.WPP] {
				if wd != 0 {
					return false
				}
			}
		}
	}
	return true
}

// TailClean reports whether every interior pixel has zero bits in lanes
// [C, WPP*64). Kernels rely on this to keep Equation 1 exact under
// channel padding.
func (p *Packed) TailClean() bool {
	full := p.C / WordBits
	rem := p.C % WordBits
	for h := 0; h < p.H; h++ {
		for w := 0; w < p.W; w++ {
			words := p.PixelWords(h, w)
			if rem != 0 {
				if words[full]&^(uint64(1)<<uint(rem)-1) != 0 {
					return false
				}
			}
			for i := full + boolToInt(rem != 0); i < p.WPP; i++ {
				if words[i] != 0 {
					return false
				}
			}
		}
	}
	return true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// String summarizes the packed tensor.
func (p *Packed) String() string {
	return fmt.Sprintf("Packed(%dx%dx%d wpp=%d margin=%dx%d)", p.H, p.W, p.C, p.WPP, p.MarginH, p.MarginW)
}
