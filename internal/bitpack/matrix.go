package bitpack

import (
	"fmt"

	"bitflow/internal/tensor"
)

// PackedMatrix is a binarized, bit-packed, *transposed* weight matrix for
// the binary fully connected operator. The source weight matrix B is N×K
// (N input neurons, K output neurons, paper §III-C); PackedMatrix stores K
// rows of WPR words, each row holding the N bits of one output neuron's
// weight column. Packing B transposed makes the bgemm inner loop a linear
// walk over both operands.
type PackedMatrix struct {
	K, N  int // logical dims: K output rows of N bits
	WPR   int // words per row, ≥ WordsFor(N)
	Words []uint64
}

// NewPackedMatrix allocates a zeroed packed matrix.
func NewPackedMatrix(k, n, wpr int) *PackedMatrix {
	if wpr < WordsFor(n) {
		panic(fmt.Sprintf("bitpack: matrix wpr %d < WordsFor(%d)=%d", wpr, n, WordsFor(n)))
	}
	return &PackedMatrix{K: k, N: n, WPR: wpr, Words: make([]uint64, k*wpr)}
}

// RowWords returns the WPR-word slice for output neuron k.
func (pm *PackedMatrix) RowWords(k int) []uint64 {
	off := k * pm.WPR
	return pm.Words[off : off+pm.WPR : off+pm.WPR]
}

// PackMatrixBT fuses binarization, bit-packing and transposition of the
// N×K weight matrix B into a single pass — the paper's Table III
// transform: B is read exactly once and the packed bits land directly at
// their transposed locations ("we store the results of bit-packing in a
// transposed pattern").
//
// The walk is stripe-major for cache friendliness on large matrices
// (fc6 is 25088×4096): each stripe of 64 consecutive rows is streamed
// with unit stride, its K packed words accumulate in a K-word scratch
// buffer (32 KiB for fc6 — L1/L2 resident), and the stripe's words are
// scattered into the transposed layout once.
func PackMatrixBT(b *tensor.Matrix, wpr int) *PackedMatrix {
	n, k := b.Rows, b.Cols
	pm := NewPackedMatrix(k, n, wpr)
	scratch := make([]uint64, k)
	for wi := 0; wi*WordBits < n; wi++ {
		clear(scratch)
		base := wi * WordBits
		top := min(WordBits, n-base)
		for bit := 0; bit < top; bit++ {
			row := b.Data[(base+bit)*k : (base+bit+1)*k]
			mask := uint64(1) << uint(bit)
			for j, v := range row {
				if v >= 0 {
					scratch[j] |= mask
				}
			}
		}
		for j := 0; j < k; j++ {
			pm.Words[j*wpr+wi] = scratch[j]
		}
	}
	return pm
}

// StagedPackMatrixBT computes the same result as PackMatrixBT but in three
// separate passes (binarize to a ±1 matrix, transpose it, then pack each
// row), materializing both intermediates. It exists as the ablation
// baseline quantifying what Table III's fusion buys.
func StagedPackMatrixBT(b *tensor.Matrix, wpr int) *PackedMatrix {
	signed := b.Sign()
	bt := signed.T() // K×N
	pm := NewPackedMatrix(bt.Rows, bt.Cols, wpr)
	for k := 0; k < bt.Rows; k++ {
		packChannels(pm.RowWords(k), bt.Row(k))
	}
	return pm
}

// PackVector binarizes and packs a float vector into wpr words (trailing
// lanes zero). Used for the FC activation vector (M = 1).
func PackVector(v []float32, wpr int) []uint64 {
	if wpr < WordsFor(len(v)) {
		panic(fmt.Sprintf("bitpack: vector wpr %d < WordsFor(%d)=%d", wpr, len(v), WordsFor(len(v))))
	}
	dst := make([]uint64, wpr)
	packChannels(dst, v)
	return dst
}

// PackVectorInto binarizes and packs v into dst, clearing trailing words.
func PackVectorInto(dst []uint64, v []float32) {
	if len(dst) < WordsFor(len(v)) {
		panic("bitpack: PackVectorInto dst too short")
	}
	packChannels(dst, v)
}

// UnpackVector expands n bits from words into a ±1 float vector.
func UnpackVector(words []uint64, n int) []float32 {
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		if words[i/WordBits]>>(uint(i)%WordBits)&1 == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// String summarizes the packed matrix.
func (pm *PackedMatrix) String() string {
	return fmt.Sprintf("PackedMatrix(K=%d N=%d wpr=%d)", pm.K, pm.N, pm.WPR)
}
