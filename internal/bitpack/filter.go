package bitpack

import (
	"fmt"

	"bitflow/internal/tensor"
)

// PackedFilter is a bit-packed bank of K convolution filters, packed along
// the channel dimension like activations so that PressedConv can XOR a
// filter tap directly against a pixel's channel words.
//
// Layout: filter tap (k, i, j) owns WPP consecutive words starting at
// ((k*KH+i)*KW+j)*WPP. Within a filter, taps are contiguous: the KH*KW*WPP
// words of filter k form one dense block, which the conv inner loop walks
// linearly.
type PackedFilter struct {
	K, KH, KW int
	C         int // true channel count
	WPP       int // words per tap, ≥ WordsFor(C)
	Words     []uint64
}

// NewPackedFilter allocates a zeroed packed filter bank.
func NewPackedFilter(k, kh, kw, c, wpp int) *PackedFilter {
	if wpp < WordsFor(c) {
		panic(fmt.Sprintf("bitpack: filter wpp %d < WordsFor(%d)=%d", wpp, c, WordsFor(c)))
	}
	return &PackedFilter{
		K: k, KH: kh, KW: kw, C: c, WPP: wpp,
		Words: make([]uint64, k*kh*kw*wpp),
	}
}

// PackFilter binarizes f (sign) and packs it along the channel dimension.
// Filters are constant during inference, so the paper performs this once
// at network initialization (network-level optimization, §IV).
func PackFilter(f *tensor.Filter, wpp int) *PackedFilter {
	pf := NewPackedFilter(f.K, f.KH, f.KW, f.C, wpp)
	for k := 0; k < f.K; k++ {
		for i := 0; i < f.KH; i++ {
			for j := 0; j < f.KW; j++ {
				packChannels(pf.TapWords(k, i, j), f.Tap(k, i, j))
			}
		}
	}
	return pf
}

// TapWords returns the WPP-word slice of filter k's tap (i, j), aliasing
// the underlying buffer.
func (pf *PackedFilter) TapWords(k, i, j int) []uint64 {
	off := ((k*pf.KH+i)*pf.KW + j) * pf.WPP
	return pf.Words[off : off+pf.WPP : off+pf.WPP]
}

// FilterWords returns the dense KH*KW*WPP-word block of filter k.
func (pf *PackedFilter) FilterWords(k int) []uint64 {
	sz := pf.KH * pf.KW * pf.WPP
	off := k * sz
	return pf.Words[off : off+sz : off+sz]
}

// UnpackFilter expands pf back into a ±1-valued float filter bank.
func UnpackFilter(pf *PackedFilter) *tensor.Filter {
	f := tensor.NewFilter(pf.K, pf.KH, pf.KW, pf.C)
	for k := 0; k < pf.K; k++ {
		for i := 0; i < pf.KH; i++ {
			for j := 0; j < pf.KW; j++ {
				words := pf.TapWords(k, i, j)
				tap := f.Tap(k, i, j)
				for c := 0; c < pf.C; c++ {
					if words[c/WordBits]>>(uint(c)%WordBits)&1 == 1 {
						tap[c] = 1
					} else {
						tap[c] = -1
					}
				}
			}
		}
	}
	return f
}

// String summarizes the packed filter bank.
func (pf *PackedFilter) String() string {
	return fmt.Sprintf("PackedFilter(K=%d %dx%dx%d wpp=%d)", pf.K, pf.KH, pf.KW, pf.C, pf.WPP)
}
