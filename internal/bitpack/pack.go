package bitpack

import (
	"fmt"

	"bitflow/internal/tensor"
)

// signBit returns 1 for v >= 0 and 0 otherwise — the paper's activation
// function (Equation 3) expressed at the bit level.
func signBit(v float32) uint64 {
	if v >= 0 {
		return 1
	}
	return 0
}

// packChannels binarizes and packs one C-length channel vector into dst
// (len ≥ WordsFor(C)); trailing lanes of the last touched word and any
// remaining words of dst are cleared. This is the Go analogue of the
// paper's bit64_t/bit64_u bit-field trick (Table II): build the word with
// shifts instead of per-bit memory writes.
func packChannels(dst []uint64, src []float32) {
	n := len(src)
	full := n / WordBits
	i := 0
	for w := 0; w < full; w++ {
		var word uint64
		// Unrolled by 8: the compiler keeps `word` in a register and the
		// eight comparisons pipeline, mirroring the fused binarization
		// the paper performs with bit fields.
		for b := 0; b < WordBits; b += 8 {
			word |= signBit(src[i]) << uint(b)
			word |= signBit(src[i+1]) << uint(b+1)
			word |= signBit(src[i+2]) << uint(b+2)
			word |= signBit(src[i+3]) << uint(b+3)
			word |= signBit(src[i+4]) << uint(b+4)
			word |= signBit(src[i+5]) << uint(b+5)
			word |= signBit(src[i+6]) << uint(b+6)
			word |= signBit(src[i+7]) << uint(b+7)
			i += 8
		}
		dst[w] = word
	}
	if rem := n % WordBits; rem != 0 {
		var word uint64
		for b := 0; b < rem; b++ {
			word |= signBit(src[i]) << uint(b)
			i++
		}
		dst[full] = word
		full++
	}
	for w := full; w < len(dst); w++ {
		dst[w] = 0
	}
}

// PackTensor binarizes t (sign) and packs it along the channel dimension
// into a new Packed buffer with the given words-per-pixel and margins.
// wpp must be at least WordsFor(t.C); margins may be zero.
func PackTensor(t *tensor.Tensor, wpp, marginH, marginW int) *Packed {
	p := NewPacked(t.H, t.W, t.C, wpp, marginH, marginW)
	PackTensorInto(t, p)
	return p
}

// PackTensorInto binarizes t and packs it into the interior of p, which
// must match t's H, W, C. Margin words are left untouched (they are zero
// for a freshly allocated or Zero()ed buffer).
func PackTensorInto(t *tensor.Tensor, p *Packed) {
	if t.H != p.H || t.W != p.W || t.C != p.C {
		panic(fmt.Sprintf("bitpack: PackTensorInto shape mismatch %v vs %v", t, p))
	}
	for h := 0; h < t.H; h++ {
		for w := 0; w < t.W; w++ {
			packChannels(p.PixelWords(h, w), t.Pixel(h, w))
		}
	}
}

// Unpack expands p's interior back into a ±1-valued float tensor:
// bit 1 ↦ +1, bit 0 ↦ −1. Only the true C channels are produced.
func Unpack(p *Packed) *tensor.Tensor {
	t := tensor.New(p.H, p.W, p.C)
	for h := 0; h < p.H; h++ {
		for w := 0; w < p.W; w++ {
			words := p.PixelWords(h, w)
			px := t.Pixel(h, w)
			for c := 0; c < p.C; c++ {
				if words[c/WordBits]>>(uint(c)%WordBits)&1 == 1 {
					px[c] = 1
				} else {
					px[c] = -1
				}
			}
		}
	}
	return t
}

// PackPixel binarizes vals and writes them into interior pixel (h, w) of
// p; len(vals) must equal p.C. Used by the graph executor to fuse the
// sign activation with packing of the next layer's input.
func (p *Packed) PackPixel(h, w int, vals []float32) {
	if len(vals) != p.C {
		panic(fmt.Sprintf("bitpack: PackPixel got %d values, want C=%d", len(vals), p.C))
	}
	packChannels(p.PixelWords(h, w), vals)
}
