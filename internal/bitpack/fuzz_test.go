package bitpack

import (
	"testing"

	"bitflow/internal/tensor"
)

// FuzzBitpackRoundTrip checks the pack→unpack identity on arbitrary
// shapes, values, words-per-pixel padding, and margins: every unpacked
// value must be the sign of the input (+1 for v ≥ 0, −1 otherwise), and
// re-packing the unpacked ±1 tensor must reproduce the interior words
// bit-for-bit (idempotence).
func FuzzBitpackRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), []byte{})
	f.Add(uint8(3), uint8(3), uint8(7), uint8(1), []byte{0x80, 0x01, 0x7F, 0xFF})
	f.Add(uint8(2), uint8(4), uint8(64), uint8(2), []byte{0xAA, 0x55, 0x00})
	f.Add(uint8(5), uint8(2), uint8(129), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, hRaw, wRaw, cRaw, padRaw uint8, data []byte) {
		h := int(hRaw)%6 + 1
		w := int(wRaw)%6 + 1
		c := int(cRaw)%140 + 1
		wpp := WordsFor(c) + int(padRaw)%2
		marginH := int(padRaw) / 4 % 3
		marginW := int(padRaw) / 16 % 3

		in := tensor.New(h, w, c)
		// int8-valued inputs cover both signs and zero (zero packs as +1).
		for i := range in.Data {
			var b byte
			if len(data) > 0 {
				b = data[i%len(data)]
			}
			in.Data[i] = float32(int8(b))
		}

		p := PackTensor(in, wpp, marginH, marginW)
		out := Unpack(p)

		if out.H != h || out.W != w || out.C != c {
			t.Fatalf("unpacked shape %dx%dx%d, want %dx%dx%d", out.H, out.W, out.C, h, w, c)
		}
		for i, v := range in.Data {
			want := float32(-1)
			if v >= 0 {
				want = 1
			}
			if out.Data[i] != want {
				t.Fatalf("value %d: packed %v, unpacked %v, want %v", i, v, out.Data[i], want)
			}
		}

		// Idempotence: packing the ±1 tensor reproduces the same words.
		p2 := PackTensor(out, wpp, marginH, marginW)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				w1 := p.PixelWords(y, x)
				w2 := p2.PixelWords(y, x)
				for i := range w1 {
					if w1[i] != w2[i] {
						t.Fatalf("pixel (%d,%d) word %d: %#x != %#x after repack", y, x, i, w1[i], w2[i])
					}
				}
			}
		}
	})
}
