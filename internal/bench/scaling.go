package bench

import "runtime"

// The paper measures Figs. 8–9 on 4-core and 64-core machines. When this
// reproduction runs on a host with fewer physical cores, measured thread
// sweeps flatten at the physical core count, so the harness additionally
// reports a *modeled* scaling curve and labels it as such. The model is
// deliberately simple and fully documented here:
//
//	speedup(p) = 1 / ( serialFrac + (1-serialFrac) / p_eff )
//	p_eff      = loadBalance(units, p) · min(p, cores)·…
//
// where loadBalance captures the paper's own explanation of why small
// operators stop scaling: multi-core parallelism splits the fused H·W
// dimension into contiguous chunks, so with `units` work units and p
// workers the slowest worker gets ceil(units/p) units and the effective
// parallelism is units/ceil(units/p). conv5.1 has only 14×14 = 196 output
// pixels — at 64 threads the chunks are 4 vs. the ideal 3.06, which is
// exactly the "stops scaling well" regime of Fig. 9.

// LoadBalancedParallelism returns units / ceil(units/p): the effective
// parallelism of a contiguous-chunk split of `units` work units over p
// workers.
func LoadBalancedParallelism(units, p int) float64 {
	if p < 1 {
		p = 1
	}
	if units < 1 {
		return 1
	}
	if p > units {
		p = units
	}
	chunk := (units + p - 1) / p
	return float64(units) / float64(chunk)
}

// ScalingModel predicts the speedup of p threads over 1 thread for an
// operator with `units` independent work units and the given serial
// fraction (binarize/pack stages, chunk dispatch).
type ScalingModel struct {
	// Units is the parallel work-unit count (fused OutH·OutW pixels for
	// conv/pool, K output neurons for dense).
	Units int
	// SerialFrac is the non-parallelizable fraction of the operator's
	// single-thread time. Measured BitFlow operators sit near 0.02–0.05.
	SerialFrac float64
	// MemBoundFrac is the fraction of single-thread time spent waiting
	// on memory that does not speed up once the socket's bandwidth is
	// saturated; it caps the speedup at 1/MemBoundFrac. Pool operators
	// (pure data movement) sit high; conv with large C sits moderate.
	MemBoundFrac float64
}

// Speedup predicts the acceleration of p threads over 1 thread: an
// Amdahl term over the load-balanced parallelism, composed roofline-style
// with the bandwidth-bound fraction (which approaches its 1/MemBoundFrac
// ceiling smoothly as the compute term shrinks).
func (m ScalingModel) Speedup(p int) float64 {
	if p <= 1 {
		return 1
	}
	pEff := LoadBalancedParallelism(m.Units, p)
	par := 1 - m.SerialFrac
	s := 1 / (m.SerialFrac + par/pEff)
	if m.MemBoundFrac > 0 {
		s = 1 / (m.MemBoundFrac + (1-m.MemBoundFrac)/s)
	}
	return s
}

// PhysicalCores reports the host's usable core count (GOMAXPROCS).
func PhysicalCores() int { return runtime.GOMAXPROCS(0) }

// HostCanMeasureThreads reports whether a p-thread measurement on this
// host reflects real parallel hardware.
func HostCanMeasureThreads(p int) bool { return p <= PhysicalCores() }
