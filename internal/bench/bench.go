// Package bench provides the measurement utilities shared by the
// benchmark harness (cmd/bitflow-bench) and the testing.B benchmarks:
// repeated-run median timing, aligned table rendering, and a documented
// load-balance scaling model for hosts with fewer physical cores than
// the paper's machines.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Measure runs f repeatedly and returns the median wall-clock duration.
// A warm-up run precedes measurement, and f is re-run until both `runs`
// samples are collected and `minTotal` of measured time has accumulated,
// so fast operators get enough samples for a stable median.
func Measure(runs int, minTotal time.Duration, f func()) time.Duration {
	if runs < 1 {
		runs = 1
	}
	f() // warm-up
	var samples []time.Duration
	var total time.Duration
	for len(samples) < runs || total < minTotal {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		samples = append(samples, d)
		total += d
		if len(samples) >= 10_000 {
			break
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[len(samples)/2]
}

// Ms formats a duration as milliseconds with two decimals.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

// Table renders aligned text tables for the harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; cells are stringified with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Speedup formats a ratio as "12.3x".
func Speedup(baseline, measured time.Duration) string {
	if measured <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(baseline)/float64(measured))
}

// Ratio returns baseline/measured as a float.
func Ratio(baseline, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(baseline) / float64(measured)
}
