package bench

import (
	"strings"
	"testing"
	"time"
)

func TestMeasureReturnsPlausibleMedian(t *testing.T) {
	d := Measure(3, 0, func() { time.Sleep(2 * time.Millisecond) })
	if d < time.Millisecond || d > 50*time.Millisecond {
		t.Errorf("median %v implausible for a 2ms body", d)
	}
}

func TestMeasureCollectsMinTotal(t *testing.T) {
	// Robust to CPU load: assert on accumulated wall time, not on a run
	// count derived from the nominal sleep duration.
	n := 0
	var total time.Duration
	Measure(1, 20*time.Millisecond, func() {
		n++
		t0 := time.Now()
		time.Sleep(time.Millisecond)
		total += time.Since(t0)
	})
	// Measure's own accounting excludes the warm-up run, so our total
	// (which includes it) must be at least minTotal.
	if total < 20*time.Millisecond {
		t.Errorf("accumulated only %v; minTotal not honored", total)
	}
	if n < 3 {
		t.Errorf("only %d runs for a ~1ms body", n)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("op", "time")
	tb.Row("conv2.1", "1.23ms")
	tb.Row("fc6", "0.40ms")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"op", "time", "conv2.1", "fc6", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines, got %d", len(lines))
	}
}

func TestSpeedupFormat(t *testing.T) {
	if s := Speedup(10*time.Millisecond, 2*time.Millisecond); s != "5.0x" {
		t.Errorf("Speedup = %q", s)
	}
	if s := Speedup(time.Millisecond, 0); s != "inf" {
		t.Errorf("Speedup zero = %q", s)
	}
	if r := Ratio(10*time.Millisecond, 4*time.Millisecond); r != 2.5 {
		t.Errorf("Ratio = %v", r)
	}
}

func TestLoadBalancedParallelism(t *testing.T) {
	cases := []struct {
		units, p int
		want     float64
	}{
		{196, 1, 1},
		{196, 4, 196.0 / 49},   // 14×14 conv5.1 grid, 4 threads: perfect
		{196, 64, 196.0 / 4.0}, // 64 threads: chunks of 4 → only 49×
		{100, 100, 100},
		{10, 64, 10}, // more threads than units
		{1, 8, 1},
	}
	for _, tc := range cases {
		if got := LoadBalancedParallelism(tc.units, tc.p); got != tc.want {
			t.Errorf("LoadBalancedParallelism(%d,%d) = %v want %v", tc.units, tc.p, got, tc.want)
		}
	}
}

func TestScalingModelMonotone(t *testing.T) {
	m := ScalingModel{Units: 112 * 112, SerialFrac: 0.02}
	prev := 0.0
	for _, p := range []int{1, 2, 4, 16, 64} {
		s := m.Speedup(p)
		if s < prev {
			t.Errorf("speedup not monotone at p=%d: %v < %v", p, s, prev)
		}
		prev = s
	}
	if s := m.Speedup(1); s != 1 {
		t.Errorf("Speedup(1) = %v", s)
	}
}

func TestScalingModelSaturation(t *testing.T) {
	// conv5.1-like: small grid. The paper observes "no more than 2×
	// acceleration from 16 to 64 cores" for conv4.1 and saturation for
	// conv5.1 beyond 4 cores; the load-balance model reproduces the
	// regime change.
	m := ScalingModel{Units: 14 * 14, SerialFrac: 0.02, MemBoundFrac: 0.04}
	s16 := m.Speedup(16)
	s64 := m.Speedup(64)
	if s64/s16 >= 2 {
		t.Errorf("small-grid speedup grew %vx from 16→64 threads; expected < 2x", s64/s16)
	}
	// Large grid keeps scaling (paper: conv2.1 reaches 49.3× on 64
	// cores, i.e. ~77% parallel efficiency).
	big := ScalingModel{Units: 112 * 112, SerialFrac: 0.005}
	if big.Speedup(64) < 40 {
		t.Errorf("large-grid 64-thread speedup %v; expected near-linear", big.Speedup(64))
	}
}

func TestScalingModelMemBound(t *testing.T) {
	m := ScalingModel{Units: 1 << 20, SerialFrac: 0.01, MemBoundFrac: 0.5}
	if s := m.Speedup(64); s > 4 {
		t.Errorf("bandwidth-capped speedup %v; cap should bite near 2x", s)
	}
}
