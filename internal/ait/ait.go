// Package ait implements the arithmetic-intensity analysis of paper
// §III-A (Equations 4–8): the intrinsic AIT of a convolution, the memory
// blow-up of the image-to-column unfold, and the resulting bound on the
// fraction of intrinsic AIT that the image-to-column method can achieve —
// for both full-precision and bit-packed (binary) convolution.
package ait

import "fmt"

// Conv describes one convolution for the analytical model, using the
// paper's §II-B notation: input H×W with C channels, K filters of h×w.
type Conv struct {
	H, W, C int
	K       int
	KH, KW  int
}

// Ops returns A, the number of arithmetic operations (Equation 4):
// 2·C·H·W·K·h·w (each output tap is one multiply plus one add).
func (c Conv) Ops() float64 {
	return 2 * float64(c.C) * float64(c.H) * float64(c.W) * float64(c.K) * float64(c.KH) * float64(c.KW)
}

// InputSize returns |I| = C·H·W (Equation 5).
func (c Conv) InputSize() float64 { return float64(c.C) * float64(c.H) * float64(c.W) }

// WeightSize returns |W| = K·C·h·w (Equation 6).
func (c Conv) WeightSize() float64 {
	return float64(c.K) * float64(c.C) * float64(c.KH) * float64(c.KW)
}

// OutputSize returns |O| = K·(H−h+1)·(W−w+1) (Equation 7).
func (c Conv) OutputSize() float64 {
	return float64(c.K) * float64(c.H-c.KH+1) * float64(c.W-c.KW+1)
}

// UnfoldedSize returns |U| = (H−h+1)·(W−w+1)·C·h·w (Equation 8) — the
// input after image-to-column unfolding, larger than |I| by ≈ h·w.
func (c Conv) UnfoldedSize() float64 {
	return float64(c.H-c.KH+1) * float64(c.W-c.KW+1) * float64(c.C) * float64(c.KH) * float64(c.KW)
}

// IntrinsicAIT returns A / (|I|+|W|+|O|), the convolution's intrinsic
// arithmetic intensity.
func (c Conv) IntrinsicAIT() float64 {
	return c.Ops() / (c.InputSize() + c.WeightSize() + c.OutputSize())
}

// Im2colAIT returns A / (2|U|+|W|+|O|): the best AIT the image-to-column
// method can reach, since the unfolded input must be stored and then
// re-read ("the minimum number of memory accesses in image-to-column
// method is 2|U|+|W|+|O|").
func (c Conv) Im2colAIT() float64 {
	return c.Ops() / (2*c.UnfoldedSize() + c.WeightSize() + c.OutputSize())
}

// Im2colFraction returns (|I|+|W|+|O|) / (2|U|+|W|+|O|), the paper's
// bound on the fraction of intrinsic AIT achievable by image-to-column.
func (c Conv) Im2colFraction() float64 {
	return (c.InputSize() + c.WeightSize() + c.OutputSize()) /
		(2*c.UnfoldedSize() + c.WeightSize() + c.OutputSize())
}

// Binary models the bit-packed variant: input and weights shrink by the
// packing factor (32 in the paper's uint32 packing, 64 in this repo's
// uint64 packing) and each arithmetic "operation" covers factor lanes via
// XOR+popcount. The output is *not* packed for the AIT accounting — raw
// inner products are integers (they are only re-binarized by the next
// operator's activation).
type Binary struct {
	Conv
	// Factor is the packing width in lanes per word (32 or 64).
	Factor int
}

// Ops returns the binary op count: one XOR+popcount word pair per Factor
// lanes, i.e. A/Factor.
func (b Binary) Ops() float64 { return b.Conv.Ops() / float64(b.Factor) }

// InputSize returns the packed input size |I|/Factor.
func (b Binary) InputSize() float64 { return b.Conv.InputSize() / float64(b.Factor) }

// WeightSize returns the packed weight size |W|/Factor.
func (b Binary) WeightSize() float64 { return b.Conv.WeightSize() / float64(b.Factor) }

// UnfoldedSize returns |U|/Factor.
func (b Binary) UnfoldedSize() float64 { return b.Conv.UnfoldedSize() / float64(b.Factor) }

// IntrinsicAIT returns the packed convolution's intrinsic AIT.
func (b Binary) IntrinsicAIT() float64 {
	return b.Ops() / (b.InputSize() + b.WeightSize() + b.OutputSize())
}

// Im2colAIT returns the best AIT of a bit-packed image-to-column
// convolution.
func (b Binary) Im2colAIT() float64 {
	return b.Ops() / (2*b.UnfoldedSize() + b.WeightSize() + b.OutputSize())
}

// Im2colFraction returns the achievable fraction of intrinsic AIT for the
// binary image-to-column path. Note the paper's claim (§III-A) is about
// the *absolute* AIT: packing divides the op count by Factor while the
// output term |O| does not shrink, so Im2colAIT drops well below the
// float Im2colAIT ("makes AIT even lower") even though the fraction of
// the (also lower) intrinsic AIT can rise.
func (b Binary) Im2colFraction() float64 {
	return (b.InputSize() + b.WeightSize() + b.OutputSize()) /
		(2*b.UnfoldedSize() + b.WeightSize() + b.OutputSize())
}

// String renders the geometry.
func (c Conv) String() string {
	return fmt.Sprintf("conv %dx%dx%d K=%d %dx%d", c.H, c.W, c.C, c.K, c.KH, c.KW)
}
