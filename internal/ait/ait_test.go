package ait

import (
	"testing"
	"testing/quick"
)

func conv21() Conv { return Conv{H: 112, W: 112, C: 64, K: 128, KH: 3, KW: 3} }

func TestEquationValues(t *testing.T) {
	c := conv21()
	if got, want := c.Ops(), 2.0*64*112*112*128*3*3; got != want {
		t.Errorf("A = %g want %g", got, want)
	}
	if got, want := c.InputSize(), 64.0*112*112; got != want {
		t.Errorf("|I| = %g want %g", got, want)
	}
	if got, want := c.WeightSize(), 128.0*64*3*3; got != want {
		t.Errorf("|W| = %g want %g", got, want)
	}
	if got, want := c.OutputSize(), 128.0*110*110; got != want {
		t.Errorf("|O| = %g want %g", got, want)
	}
	if got, want := c.UnfoldedSize(), 110.0*110*64*3*3; got != want {
		t.Errorf("|U| = %g want %g", got, want)
	}
}

func TestIm2colFractionBelowOne(t *testing.T) {
	f := func(h, c, k uint8) bool {
		conv := Conv{H: int(h)%60 + 4, W: int(h)%60 + 4, C: int(c)%512 + 1, K: int(k)%512 + 1, KH: 3, KW: 3}
		fr := conv.Im2colFraction()
		return fr > 0 && fr < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIm2colAITConsistency(t *testing.T) {
	// Im2colAIT must equal IntrinsicAIT × Im2colFraction.
	c := conv21()
	lhs := c.Im2colAIT()
	rhs := c.IntrinsicAIT() * c.Im2colFraction()
	if rel := (lhs - rhs) / rhs; rel > 1e-12 || rel < -1e-12 {
		t.Errorf("Im2colAIT %g != intrinsic×fraction %g", lhs, rhs)
	}
}

func TestUnfoldBlowupApproxKhKw(t *testing.T) {
	// "The unfolding procedure increases the size of the input by
	// approximately a factor of h·w."
	c := conv21()
	ratio := c.UnfoldedSize() / c.InputSize()
	if ratio < 8 || ratio > 9 {
		t.Errorf("unfold blow-up %g, expected ≈ 9 for 3×3", ratio)
	}
}

func TestBinaryAITLowerThanFloat(t *testing.T) {
	// §III-A: bit-packing "amplifies the overhead of unfolding … and
	// makes AIT even lower" — the binary image-to-column AIT drops below
	// the float one for every Table IV conv shape, because the op count
	// divides by Factor while the output term does not shrink.
	shapes := []Conv{
		conv21(),
		{H: 56, W: 56, C: 128, K: 256, KH: 3, KW: 3},
		{H: 28, W: 28, C: 256, K: 512, KH: 3, KW: 3},
		{H: 14, W: 14, C: 512, K: 512, KH: 3, KW: 3},
	}
	for _, c := range shapes {
		for _, factor := range []int{32, 64} {
			b := Binary{Conv: c, Factor: factor}
			if b.Im2colAIT() >= c.Im2colAIT() {
				t.Errorf("%v factor=%d: binary im2col AIT %g not below float %g",
					c, factor, b.Im2colAIT(), c.Im2colAIT())
			}
		}
	}
}

func TestBinaryAITQuick(t *testing.T) {
	f := func(h, c, k uint8) bool {
		conv := Conv{H: int(h)%60 + 4, W: int(h)%60 + 4, C: int(c)%512 + 1, K: int(k)%512 + 1, KH: 3, KW: 3}
		b := Binary{Conv: conv, Factor: 64}
		return b.Im2colAIT() < conv.Im2colAIT() && b.Im2colAIT() < b.IntrinsicAIT()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinaryIntrinsicAITDropsByPacking(t *testing.T) {
	// Packing divides ops by Factor but shrinks only I and W, not O:
	// binary intrinsic AIT must be below float intrinsic AIT (this is
	// the "low arithmetic intensity" of binary convolution).
	c := conv21()
	b := Binary{Conv: c, Factor: 64}
	if b.IntrinsicAIT() >= c.IntrinsicAIT() {
		t.Errorf("binary intrinsic AIT %g not below float %g", b.IntrinsicAIT(), c.IntrinsicAIT())
	}
}
