package gpusim

import (
	"testing"
	"time"

	"bitflow/internal/workload"
)

func TestCalibrationVGG16(t *testing.T) {
	// Paper Fig. 11: VGG-16 on GTX 1080 = 12.87 ms. The model must land
	// within 10%.
	got := GTX1080().VGG16Time()
	want := 12.87 * float64(time.Millisecond)
	if r := float64(got) / want; r < 0.9 || r > 1.1 {
		t.Errorf("VGG16Time = %v, paper 12.87ms (ratio %.2f)", got, r)
	}
}

func TestCalibrationVGG19(t *testing.T) {
	// Paper Fig. 11: VGG-19 on GTX 1080 = 14.92 ms.
	got := GTX1080().VGG19Time()
	want := 14.92 * float64(time.Millisecond)
	if r := float64(got) / want; r < 0.9 || r > 1.1 {
		t.Errorf("VGG19Time = %v, paper 14.92ms (ratio %.2f)", got, r)
	}
}

func TestVGG19SlowerThanVGG16(t *testing.T) {
	d := GTX1080()
	if d.VGG19Time() <= d.VGG16Time() {
		t.Error("VGG-19 must be slower than VGG-16")
	}
}

func TestOpTimeDispatch(t *testing.T) {
	d := GTX1080()
	for _, op := range workload.PaperOps() {
		dt := d.OpTime(op)
		if dt <= d.LaunchOverhead {
			t.Errorf("%s: OpTime %v not above launch overhead", op.Name, dt)
		}
		if dt > 10*time.Millisecond {
			t.Errorf("%s: OpTime %v implausibly large", op.Name, dt)
		}
	}
}

func TestOpTimeOrdering(t *testing.T) {
	// conv2.1 moves the most data/compute of the Table IV convs on a
	// GPU; pools are far cheaper than convs.
	d := GTX1080()
	get := func(name string) time.Duration {
		op, ok := workload.FindOp(name)
		if !ok {
			t.Fatalf("missing op %s", name)
		}
		return d.OpTime(op)
	}
	if get("pool4") >= get("conv4.1") {
		t.Error("pool4 should be cheaper than conv4.1 on GPU")
	}
	if get("pool5") >= get("conv5.1") {
		t.Error("pool5 should be cheaper than conv5.1 on GPU")
	}
	// fc6 is bandwidth-bound on a 392 MB weight read: the most
	// expensive single operator of the benchmark set on GPU.
	for _, name := range []string{"conv3.1", "conv4.1", "conv5.1", "pool4", "pool5", "fc7"} {
		if get("fc6") <= get(name) {
			t.Errorf("fc6 should dominate %s on GPU", name)
		}
	}
}

func TestConvTimeMonotonicInWork(t *testing.T) {
	d := GTX1080()
	small := d.ConvTime(14, 14, 512, 512, 3, 3, 1, 1)
	big := d.ConvTime(28, 28, 512, 512, 3, 3, 1, 1)
	if big <= small {
		t.Error("4× work must model as strictly slower")
	}
}
