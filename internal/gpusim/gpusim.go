// Package gpusim models the wall-clock time of full-precision DNN
// operators on a GPU. The paper compares measured BitFlow CPU times
// against a real GTX 1080 running Keras/TensorFlow 1.2 (Figs. 10–11);
// no GPU exists in this reproduction environment, so the comparator is a
// documented analytic model — a roofline with per-operator launch
// overhead — calibrated against the end-to-end numbers the paper prints
// (VGG-16 = 12.87 ms, VGG-19 = 14.92 ms). See DESIGN.md §2.
//
// The model charges each operator the maximum of its compute time
// (FLOPs / effective FLOP rate) and its memory time (bytes moved /
// effective bandwidth), plus a fixed kernel-launch overhead. Convolutions
// on a 2016-era cuDNN run far from peak; M=1 fully connected layers are
// purely bandwidth-bound (each weight is read once per inference);
// pooling is bandwidth-bound on activations.
package gpusim

import (
	"time"

	"bitflow/internal/workload"
)

// Device is an analytic GPU model.
type Device struct {
	Name string
	// PeakFLOPS is the theoretical fp32 throughput.
	PeakFLOPS float64
	// ConvEfficiency is the achieved fraction of PeakFLOPS on conv
	// layers (framework + cuDNN, batch 1).
	ConvEfficiency float64
	// MemBandwidth is the theoretical DRAM bandwidth in bytes/s.
	MemBandwidth float64
	// MemEfficiency is the achieved fraction of MemBandwidth.
	MemEfficiency float64
	// LaunchOverhead is the fixed per-operator cost (kernel launch +
	// framework dispatch).
	LaunchOverhead time.Duration
}

// GTX1080 returns the calibrated model of the paper's comparator.
// PeakFLOPS and MemBandwidth are the card's public specs (8.873 TFLOPS,
// 320 GB/s); ConvEfficiency, MemEfficiency and LaunchOverhead are fitted
// so that VGG-16/19 end-to-end times land on the paper's 12.87/14.92 ms.
func GTX1080() Device {
	return Device{
		Name:           "GTX 1080 (simulated)",
		PeakFLOPS:      8.873e12,
		ConvEfficiency: 0.36,
		MemBandwidth:   320e9,
		MemEfficiency:  0.75,
		LaunchOverhead: 40 * time.Microsecond,
	}
}

func (d Device) seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// ConvTime models one float convolution: inH×inW×C input, K filters of
// kh×kw, stride/pad as given.
func (d Device) ConvTime(inH, inW, c, k, kh, kw, stride, pad int) time.Duration {
	outH := (inH+2*pad-kh)/stride + 1
	outW := (inW+2*pad-kw)/stride + 1
	flops := 2 * float64(outH) * float64(outW) * float64(k) * float64(kh) * float64(kw) * float64(c)
	bytes := 4 * (float64(inH)*float64(inW)*float64(c) + // input
		float64(k)*float64(c)*float64(kh)*float64(kw) + // weights
		float64(outH)*float64(outW)*float64(k)) // output
	compute := flops / (d.ConvEfficiency * d.PeakFLOPS)
	memory := bytes / (d.MemEfficiency * d.MemBandwidth)
	return d.LaunchOverhead + d.seconds(max(compute, memory))
}

// DenseTime models a batch-1 fully connected layer (N inputs, K outputs):
// bandwidth-bound on the N×K weight matrix.
func (d Device) DenseTime(n, k int) time.Duration {
	flops := 2 * float64(n) * float64(k)
	bytes := 4 * (float64(n)*float64(k) + float64(n) + float64(k))
	compute := flops / (d.ConvEfficiency * d.PeakFLOPS)
	memory := bytes / (d.MemEfficiency * d.MemBandwidth)
	return d.LaunchOverhead + d.seconds(max(compute, memory))
}

// PoolTime models a max pool: bandwidth-bound on input + output.
func (d Device) PoolTime(inH, inW, c, kh, kw, stride int) time.Duration {
	outH := (inH-kh)/stride + 1
	outW := (inW-kw)/stride + 1
	bytes := 4 * (float64(inH)*float64(inW)*float64(c) + float64(outH)*float64(outW)*float64(c))
	return d.LaunchOverhead + d.seconds(bytes/(d.MemEfficiency*d.MemBandwidth))
}

// OpTime dispatches on a Table IV operator config.
func (d Device) OpTime(op workload.OpConfig) time.Duration {
	switch op.Kind {
	case workload.OpConv:
		return d.ConvTime(op.H, op.W, op.C, op.K, op.KH, op.KW, op.Stride, op.Pad)
	case workload.OpFC:
		return d.DenseTime(op.N, op.K)
	case workload.OpPool:
		return d.PoolTime(op.H, op.W, op.C, op.KH, op.KW, op.Stride)
	}
	panic("gpusim: unknown op kind")
}

// vggLayer describes one layer of the VGG time model.
type vggLayer struct {
	kind       workload.OpKind
	h, w, c, k int
	n          int
}

func vggLayers(blocks [][2]int) []vggLayer {
	var ls []vggLayer
	h, w, c := 224, 224, 3
	for _, blk := range blocks {
		filters, convs := blk[0], blk[1]
		for i := 0; i < convs; i++ {
			ls = append(ls, vggLayer{kind: workload.OpConv, h: h, w: w, c: c, k: filters})
			c = filters
		}
		ls = append(ls, vggLayer{kind: workload.OpPool, h: h, w: w, c: c})
		h, w = h/2, w/2
	}
	ls = append(ls,
		vggLayer{kind: workload.OpFC, n: h * w * c, k: 4096},
		vggLayer{kind: workload.OpFC, n: 4096, k: 4096},
		vggLayer{kind: workload.OpFC, n: 4096, k: 1000},
	)
	return ls
}

func (d Device) vggTime(blocks [][2]int) time.Duration {
	var total time.Duration
	for _, l := range vggLayers(blocks) {
		switch l.kind {
		case workload.OpConv:
			total += d.ConvTime(l.h, l.w, l.c, l.k, 3, 3, 1, 1)
		case workload.OpPool:
			total += d.PoolTime(l.h, l.w, l.c, 2, 2, 2)
		case workload.OpFC:
			total += d.DenseTime(l.n, l.k)
		}
	}
	return total
}

// VGG16Time returns the modeled end-to-end float VGG-16 inference time.
func (d Device) VGG16Time() time.Duration {
	return d.vggTime([][2]int{{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}})
}

// VGG19Time returns the modeled end-to-end float VGG-19 inference time.
func (d Device) VGG19Time() time.Duration {
	return d.vggTime([][2]int{{64, 2}, {128, 2}, {256, 4}, {512, 4}, {512, 4}})
}
