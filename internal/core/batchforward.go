package core

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
)

// This file implements the batched forward paths behind graph.InferBatch:
// each operator processes B images per invocation, so its packed weights
// stream through the cache once per layer per batch instead of once per
// image, and the per-call dispatch overhead of the single-image kernels
// amortizes across the batch (the operator-level consequence of the
// paper's observation that binary kernels are throughput-bound). Per-image
// arithmetic is identical word-for-word to the single-image paths, so
// batched outputs are bit-identical to sequential ones.

// ForwardPackedBatch runs ForwardPacked over B = len(ins) images in one
// layer-major pass. For every output pixel the receptive fields of all B
// images are gathered into contiguous blocks, then each packed filter is
// applied to the whole batch with a single batched-kernel call. ins and
// outs must be pairwise legal ForwardPacked arguments; buffers must not
// alias across images. ec splits the fused OutH·OutW dimension, as in
// ForwardPacked.
func (cv *Conv) ForwardPackedBatch(ins, outs []*bitpack.Packed, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: conv batch %d inputs, %d outputs", B, len(outs)))
	}
	if B == 1 {
		cv.ForwardPacked(ins[0], outs[0], ec)
		return
	}
	s := cv.Shape
	for b := 0; b < B; b++ {
		cv.checkInput(ins[b])
		if outs[b].H != s.OutH || outs[b].W != s.OutW || outs[b].C != s.OutC {
			panic(fmt.Sprintf("core: conv packed output %v, want %dx%dx%d", outs[b], s.OutH, s.OutW, s.OutC))
		}
		if outs[b].WPP != outs[0].WPP {
			panic("core: conv batch outputs disagree on words per pixel")
		}
	}
	rowLen := cv.rowLen
	S := s.KH * rowLen // gathered receptive-field words per image
	packWPP := bitpack.WordsFor(s.K)
	kernel := kernels.BatchForWidth(cv.Plan.Width)
	fw := cv.filter.Words
	n32 := int32(cv.validLanes)
	epi := cv.epi
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		// Per-worker scratch: gathered inputs (image-major, S words each),
		// one accumulator per image, and the packed output words of the
		// current pixel for every image.
		gather := make([]uint64, B*S)     //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		accs := make([]int32, B)          //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		outW := make([]uint64, B*packWPP) //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			y0 := y*s.Stride - s.Pad
			x0 := x*s.Stride - s.Pad
			for b := 0; b < B; b++ {
				w := ins[b].Words
				dst := gather[b*S : (b+1)*S]
				for i := 0; i < s.KH; i++ {
					off := ins[b].PixelOffset(y0+i, x0)
					copy(dst[i*rowLen:(i+1)*rowLen], w[off:off+rowLen])
				}
			}
			kernels.ConvBatchEpilogue(kernel, gather, fw, S, n32, epi, accs, outW, packWPP)
			for b := 0; b < B; b++ {
				dst := outs[b].PixelWords(y, x)
				n := copy(dst, outW[b*packWPP:(b+1)*packWPP])
				for ; n < len(dst); n++ {
					dst[n] = 0
				}
			}
		}
	})
}

// ForwardFusedBatch is ForwardFused over B images: the layer-major
// batched sweep with the conv→threshold→binarize→max-pool epilogue, so
// no lane ever materializes (or re-reads) the conv's intermediate plane.
// A filter skips its batched kernel call only once every lane's bit has
// saturated. pl must satisfy CanFusePool; outs take the pool's output
// geometry.
func (cv *Conv) ForwardFusedBatch(ins []*bitpack.Packed, pl *Pool, outs []*bitpack.Packed, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: conv batch %d inputs, %d outputs", B, len(outs)))
	}
	if B == 1 {
		cv.ForwardFused(ins[0], pl, outs[0], ec)
		return
	}
	if pl == nil {
		cv.ForwardPackedBatch(ins, outs, ec)
		return
	}
	if !cv.CanFusePool(pl.Shape) {
		panic(fmt.Sprintf("core: pool %+v cannot fuse into conv %+v", pl.Shape, cv.Shape))
	}
	s := cv.Shape
	p := pl.Shape
	for b := 0; b < B; b++ {
		cv.checkInput(ins[b])
		if outs[b].H != p.OutH || outs[b].W != p.OutW || outs[b].C != p.OutC {
			panic(fmt.Sprintf("core: fused output %v, want %dx%dx%d", outs[b], p.OutH, p.OutW, p.OutC))
		}
		if outs[b].WPP != outs[0].WPP {
			panic("core: conv batch outputs disagree on words per pixel")
		}
	}
	rowLen := cv.rowLen
	S := s.KH * rowLen
	packWPP := bitpack.WordsFor(s.K)
	kernel := kernels.BatchForWidth(cv.Plan.Width)
	fw := cv.filter.Words
	n32 := int32(cv.validLanes)
	epi := cv.epi
	total := p.OutH * p.OutW
	ec.ParallelFor(total, func(start, end int) {
		gather := make([]uint64, B*S)     //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		accs := make([]int32, B)          //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		outW := make([]uint64, B*packWPP) //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		for idx := start; idx < end; idx++ {
			py := idx / p.OutW
			px := idx % p.OutW
			for i := 0; i < p.KH; i++ {
				cy := py*p.Stride + i
				for j := 0; j < p.KW; j++ {
					cx := px*p.Stride + j
					y0 := cy*s.Stride - s.Pad
					x0 := cx*s.Stride - s.Pad
					for b := 0; b < B; b++ {
						w := ins[b].Words
						dst := gather[b*S : (b+1)*S]
						for r := 0; r < s.KH; r++ {
							off := ins[b].PixelOffset(y0+r, x0)
							copy(dst[r*rowLen:(r+1)*rowLen], w[off:off+rowLen])
						}
					}
					if i == 0 && j == 0 {
						kernels.ConvBatchEpilogue(kernel, gather, fw, S, n32, epi, accs, outW, packWPP)
					} else {
						kernels.ConvBatchEpilogueOr(kernel, gather, fw, S, n32, epi, accs, outW, packWPP)
					}
				}
			}
			for b := 0; b < B; b++ {
				dst := outs[b].PixelWords(py, px)
				n := copy(dst, outW[b*packWPP:(b+1)*packWPP])
				for ; n < len(dst); n++ {
					dst[n] = 0
				}
			}
		}
	})
}

// DenseBatchScratch holds the flat staging buffers the batched dense
// paths need: the gathered M×N bit matrix for bgemm, its int32 product
// matrix, and per-image views of the pre-activations. It only ever grows
// (EnsureBatch semantics): size it once to the max batch and the batched
// forward paths allocate nothing afterwards.
type DenseBatchScratch struct {
	a    []uint64  // B*Plan.Words gathered activation rows (bgemm A)
	prod []int32   // B*K bgemm products
	pre  []int32   // B*K pre-activations (ForwardBatch destination)
	rows [][]int32 // per-image views of pre
}

// Ensure grows the scratch to serve batches of up to B images of d.
func (s *DenseBatchScratch) Ensure(d *Dense, B int) {
	if need := B * d.Plan.Words; cap(s.a) < need {
		s.a = make([]uint64, need)
	}
	if need := B * d.Shape.K; cap(s.prod) < need {
		s.prod = make([]int32, need)
		s.pre = make([]int32, need)
	}
	for len(s.rows) < B {
		b := len(s.rows)
		s.rows = append(s.rows, s.pre[b*d.Shape.K:(b+1)*d.Shape.K])
	}
	// A prior Ensure for a different operator (or a re-grown pre) can
	// leave stale views; rebuild when the first row does not alias pre.
	if len(s.rows) > 0 && (&s.rows[0][0] != &s.pre[0] || len(s.rows[0]) != d.Shape.K) {
		s.rows = s.rows[:0]
		for b := 0; b < B; b++ {
			s.rows = append(s.rows, s.pre[b*d.Shape.K:(b+1)*d.Shape.K])
		}
	}
}

// ForwardBatch computes the K inner products of B packed activation rows
// in one bgemm call with M = B: every packed weight row streams through
// the cache once per batch. out[b] receives image b's K products. s is
// caller-owned scratch, grown on demand.
func (d *Dense) ForwardBatch(ins [][]uint64, outs [][]int32, s *DenseBatchScratch, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: dense batch %d inputs, %d outputs", B, len(outs)))
	}
	for b := 0; b < B; b++ {
		if len(ins[b]) != d.Plan.Words {
			panic(fmt.Sprintf("core: dense batch input %d has %d words, want %d", b, len(ins[b]), d.Plan.Words))
		}
		if len(outs[b]) != d.Shape.K {
			panic(fmt.Sprintf("core: dense batch output %d has len %d, want K=%d", b, len(outs[b]), d.Shape.K))
		}
	}
	s.Ensure(d, B)
	a := s.a[:B*d.Plan.Words]
	for b := 0; b < B; b++ {
		copy(a[b*d.Plan.Words:(b+1)*d.Plan.Words], ins[b])
	}
	out := s.prod[:B*d.Shape.K]
	opts := kernels.BGemmOpts{Kernel: d.Plan.Kernel}
	kernels.BGemmExec(a, B, d.weights.Words, d.Shape.K, d.Plan.Words, d.Shape.N, out, opts, ec)
	for b := 0; b < B; b++ {
		copy(outs[b], out[b*d.Shape.K:(b+1)*d.Shape.K])
	}
}

// ForwardPackedBatch is ForwardPacked over B images: one bgemm with
// M = B, then the fused sign/threshold activation packed per image.
func (d *Dense) ForwardPackedBatch(ins, outs [][]uint64, s *DenseBatchScratch, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: dense batch %d inputs, %d outputs", B, len(outs)))
	}
	s.Ensure(d, B)
	if B == 1 {
		d.ForwardPacked(ins[0], outs[0], s.rows[0], ec)
		return
	}
	tmp := s.rows[:B]
	d.ForwardBatch(ins, tmp, s, ec)
	for b := 0; b < B; b++ {
		if len(outs[b]) < bitpack.WordsFor(d.Shape.K) {
			panic("core: dense packed output too short")
		}
		d.packSigns(tmp[b], outs[b])
	}
}

// ForwardFloatBatch is ForwardFloat over B images: one bgemm with M = B,
// then the float conversion and optional affine per image.
func (d *Dense) ForwardFloatBatch(ins [][]uint64, outs [][]float32, s *DenseBatchScratch, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: dense batch %d inputs, %d outputs", B, len(outs)))
	}
	s.Ensure(d, B)
	if B == 1 {
		d.ForwardFloat(ins[0], outs[0], s.rows[0], ec)
		return
	}
	tmp := s.rows[:B]
	d.ForwardBatch(ins, tmp, s, ec)
	for b := 0; b < B; b++ {
		if d.affine != nil {
			d.affine.Apply(tmp[b], outs[b])
			continue
		}
		for i, v := range tmp[b] {
			outs[b][i] = float32(v)
		}
	}
}

// packSigns writes the sign/threshold bits of the K pre-activations into
// out via the fused epilogue, clearing trailing lanes — the shared tail
// of ForwardPacked and ForwardPackedBatch.
func (d *Dense) packSigns(tmp []int32, out []uint64) {
	d.epi.Pack(tmp, out)
}
