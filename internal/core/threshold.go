package core

import (
	"fmt"
	"math"

	"bitflow/internal/kernels"
)

// Thresholds generalizes the sign activation of the binarized path.
//
// A real BNN layer is conv → batch-norm → sign. At inference the
// batch-norm affine is constant, so
//
//	sign(γ·(d − μ)/σ + β)
//
// over the integer inner product d collapses to an integer comparison per
// output channel: bit = (d ≥ T) when γ > 0, bit = (d ≤ T) when γ < 0
// (the standard BNN "threshold" folding, cf. XNOR-Net / FINN, which the
// paper's related work builds on). A plain bias b folds the same way
// with γ = 1, β = b. The zero value (T = 0, Flip = false everywhere, or
// a nil *Thresholds) is exactly the paper's Equation 3 sign.
type Thresholds struct {
	// T is the per-channel integer threshold.
	T []int32
	// Flip marks channels whose comparison is inverted (γ < 0).
	Flip []bool
}

// NewThresholds returns the identity activation (plain sign) over k
// channels.
func NewThresholds(k int) *Thresholds {
	return &Thresholds{T: make([]int32, k), Flip: make([]bool, k)}
}

// bit evaluates the folded activation for channel c at integer
// pre-activation d. The hot paths never call this per element any more —
// they run the pre-compiled branchless Epilogue — but it remains the
// readable reference the epilogue is tested against.
func (th *Thresholds) bit(c int, d int32) bool {
	if th.Flip[c] {
		return d <= th.T[c]
	}
	return d >= th.T[c]
}

// Epilogue compiles the activation into the branchless fused form the
// kernels consume. A nil receiver yields the plain sign over k channels.
// Called once at operator construction / SetThresholds time.
func (th *Thresholds) Epilogue(k int) *kernels.Epilogue {
	if th == nil {
		return kernels.NewSignEpilogue(k)
	}
	return kernels.NewEpilogue(th.T, th.Flip)
}

// validate checks the channel count.
func (th *Thresholds) validate(k int) error {
	if len(th.T) != k || len(th.Flip) != k {
		return fmt.Errorf("core: thresholds for %d channels, operator has %d", len(th.T), k)
	}
	return nil
}

// FoldBatchNorm computes the thresholds equivalent to batch-norm
// followed by sign: sign(γ·(d−μ)/σ + β) with σ = √(variance + eps).
// Channels with γ = 0 degenerate to a constant sign(β); they are encoded
// as an always-true or always-false comparison.
func FoldBatchNorm(gamma, beta, mean, variance []float32, eps float64) (*Thresholds, error) {
	k := len(gamma)
	if len(beta) != k || len(mean) != k || len(variance) != k {
		return nil, fmt.Errorf("core: batch-norm parameter lengths differ (%d/%d/%d/%d)",
			len(gamma), len(beta), len(mean), len(variance))
	}
	th := NewThresholds(k)
	for c := 0; c < k; c++ {
		g := float64(gamma[c])
		sigma := math.Sqrt(float64(variance[c]) + eps)
		if !(sigma > 0) { // catches NaN from negative variance too
			return nil, fmt.Errorf("core: channel %d has non-positive σ", c)
		}
		switch {
		case g > 0:
			// d ≥ μ − β·σ/γ, integer d → ceil of the real bound.
			tau := float64(mean[c]) - float64(beta[c])*sigma/g
			th.T[c] = int32(math.Ceil(tau))
			th.Flip[c] = false
		case g < 0:
			// d ≤ μ − β·σ/γ → floor of the real bound.
			tau := float64(mean[c]) - float64(beta[c])*sigma/g
			th.T[c] = int32(math.Floor(tau))
			th.Flip[c] = true
		default: // γ == 0: activation is sign(β), a constant.
			if beta[c] >= 0 {
				th.T[c] = math.MinInt32 // d ≥ -inf: always 1
				th.Flip[c] = false
			} else {
				th.T[c] = math.MinInt32 // d ≤ -inf: always 0
				th.Flip[c] = true
			}
		}
	}
	return th, nil
}

// FoldBias computes the thresholds equivalent to adding a per-channel
// bias before the sign: sign(d + b) ⇔ d ≥ ⌈−b⌉.
func FoldBias(bias []float32) *Thresholds {
	th := NewThresholds(len(bias))
	for c, b := range bias {
		th.T[c] = int32(math.Ceil(float64(-b)))
	}
	return th
}

// Compose merges a later fold into an existing activation. It is only
// defined when the first activation is the identity (plain sign was not
// yet customized); BNN stacks apply at most one affine between the
// matmul and the sign, so composition beyond that is rejected.
func (th *Thresholds) Compose(next *Thresholds) (*Thresholds, error) {
	if th == nil {
		return next, nil
	}
	identity := true
	for c := range th.T {
		if th.T[c] != 0 || th.Flip[c] {
			identity = false
			break
		}
	}
	if !identity {
		return nil, fmt.Errorf("core: layer already has a folded activation")
	}
	return next, nil
}

// Affine is the float counterpart used on the final (logit-emitting)
// layer: out = Scale[c]·(d − Mean[c]) + Shift[c]. Batch-norm on the
// classifier output folds here instead of into thresholds, because the
// logits stay float.
type Affine struct {
	Scale []float32
	Mean  []float32
	Shift []float32
}

// NewAffineFromBatchNorm builds the affine for γ/β/μ/σ parameters.
func NewAffineFromBatchNorm(gamma, beta, mean, variance []float32, eps float64) (*Affine, error) {
	k := len(gamma)
	if len(beta) != k || len(mean) != k || len(variance) != k {
		return nil, fmt.Errorf("core: batch-norm parameter lengths differ")
	}
	a := &Affine{Scale: make([]float32, k), Mean: make([]float32, k), Shift: make([]float32, k)}
	for c := 0; c < k; c++ {
		sigma := math.Sqrt(float64(variance[c]) + eps)
		if !(sigma > 0) { // catches NaN from negative variance too
			return nil, fmt.Errorf("core: channel %d has non-positive σ", c)
		}
		a.Scale[c] = float32(float64(gamma[c]) / sigma)
		a.Mean[c] = mean[c]
		a.Shift[c] = beta[c]
	}
	return a, nil
}

// NewAffineFromBias builds the affine adding a plain bias.
func NewAffineFromBias(bias []float32) *Affine {
	k := len(bias)
	a := &Affine{Scale: make([]float32, k), Mean: make([]float32, k), Shift: make([]float32, k)}
	for c := 0; c < k; c++ {
		a.Scale[c] = 1
		a.Shift[c] = bias[c]
	}
	return a
}

// Apply evaluates the affine over integer pre-activations.
func (a *Affine) Apply(d []int32, out []float32) {
	for c, v := range d {
		out[c] = a.Scale[c]*(float32(v)-a.Mean[c]) + a.Shift[c]
	}
}

// validate checks the channel count.
func (a *Affine) validate(k int) error {
	if len(a.Scale) != k || len(a.Mean) != k || len(a.Shift) != k {
		return fmt.Errorf("core: affine for %d channels, operator has %d", len(a.Scale), k)
	}
	return nil
}
