package core

import (
	"testing"
	"testing/quick"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func feat() sched.Features {
	return sched.Features{Arch: "test", MaxWidth: kernels.W512, HWPopcount: true}
}

// buildConv constructs a PressedConv for the given geometry with a fresh
// random ±1 filter, plus the matching ±1 input and packed input buffer.
func buildConv(t testing.TB, r *workload.RNG, h, w, c, k, kh, kw, stride, pad int) (*Conv, *tensor.Tensor, *bitpack.Packed) {
	t.Helper()
	shape, err := sched.InferConv(h, w, c, k, kh, kw, stride, pad)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Select(c, feat())
	f := workload.PM1Filter(r, k, kh, kw, c)
	cv, err := NewConv(shape, plan, f)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.PM1Tensor(r, h, w, c)
	packed := cv.NewInput()
	bitpack.PackTensorInto(in, packed)
	return cv, in, packed
}

func TestPressedConvMatchesFloatReference(t *testing.T) {
	r := workload.NewRNG(40)
	cases := []struct{ h, w, c, k, kh, kw, stride, pad int }{
		{5, 5, 64, 3, 3, 3, 1, 1},  // scalar tier
		{5, 5, 128, 4, 3, 3, 1, 1}, // SSE tier
		{4, 6, 256, 2, 3, 3, 1, 1}, // AVX256 tier
		{4, 4, 512, 5, 3, 3, 1, 1}, // AVX512 tier
		{6, 6, 3, 2, 3, 3, 1, 1},   // channel pad (conv1.1 case)
		{7, 5, 100, 3, 3, 3, 1, 1}, // non-multiple-of-64 channels
		{5, 5, 64, 3, 1, 1, 1, 0},  // 1×1 conv
		{8, 8, 64, 2, 3, 3, 2, 1},  // stride 2
		{9, 9, 64, 2, 5, 5, 1, 2},  // 5×5 window, pad 2
		{3, 3, 64, 2, 3, 3, 1, 0},  // no padding
		{1, 1, 64, 4, 1, 1, 1, 0},  // degenerate 1×1 input
		{4, 4, 192, 2, 3, 3, 1, 1}, // 192 = 3·64: scalar tier, 3 words
	}
	for _, tc := range cases {
		cv, in, packed := buildConv(t, r, tc.h, tc.w, tc.c, tc.k, tc.kh, tc.kw, tc.stride, tc.pad)
		out := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
		cv.Forward(packed, out, exec.Serial())
		// Binarized padding pads bit 0 = feature −1.
		want := baseline.ConvDirect(in, bitpack.UnpackFilter(cv.Filter()), tc.stride, tc.pad, -1, 1)
		if !out.Equal(want) {
			t.Errorf("%+v: PressedConv != float reference (max diff %g)", tc, out.MaxAbsDiff(want))
		}
	}
}

// TestPressedConvQuick is the property-based cross-check over arbitrary
// small geometries.
func TestPressedConvQuick(t *testing.T) {
	f := func(seed uint64, hh, ww, cc, kk, pp uint8) bool {
		h := int(hh)%6 + 3
		w := int(ww)%6 + 3
		c := int(cc)%150 + 1
		k := int(kk)%5 + 1
		pad := int(pp) % 2
		r := workload.NewRNG(seed)
		shape, err := sched.InferConv(h, w, c, k, 3, 3, 1, pad)
		if err != nil {
			return true // geometry rejected is fine
		}
		plan := sched.Select(c, feat())
		filt := workload.PM1Filter(r, k, 3, 3, c)
		cv, err := NewConv(shape, plan, filt)
		if err != nil {
			return false
		}
		in := workload.PM1Tensor(r, h, w, c)
		packed := cv.NewInput()
		bitpack.PackTensorInto(in, packed)
		out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		cv.Forward(packed, out, exec.Serial())
		want := baseline.ConvDirect(in, filt.Sign(), 1, pad, -1, 1)
		return out.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPressedConvThreadsAgree(t *testing.T) {
	r := workload.NewRNG(41)
	cv, _, packed := buildConv(t, r, 12, 10, 128, 8, 3, 3, 1, 1)
	serial := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
	cv.Forward(packed, serial, exec.Serial())
	for _, threads := range []int{2, 4, 16, 1000} {
		out := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
		cv.Forward(packed, out, exec.Threads(threads))
		if !out.Equal(serial) {
			t.Errorf("threads=%d: output differs from serial", threads)
		}
	}
}

func TestForwardPackedIsSignOfForward(t *testing.T) {
	r := workload.NewRNG(42)
	for _, c := range []int{64, 128, 100, 512} {
		cv, _, packed := buildConv(t, r, 6, 6, c, 70, 3, 3, 1, 1)
		raw := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
		cv.Forward(packed, raw, exec.Threads(2))
		outPlan := sched.Select(cv.Shape.OutC, feat())
		pOut := bitpack.NewPacked(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC, outPlan.Words, 1, 1)
		cv.ForwardPacked(packed, pOut, exec.Threads(2))
		want := raw.Sign()
		got := bitpack.Unpack(pOut)
		if !got.Equal(want) {
			t.Errorf("C=%d: ForwardPacked != sign(Forward)", c)
		}
		if !pOut.MarginsAllZero() {
			t.Errorf("C=%d: ForwardPacked dirtied output margins", c)
		}
		if !pOut.TailClean() {
			t.Errorf("C=%d: ForwardPacked left dirty tail lanes", c)
		}
	}
}

func TestConvZeroCostPaddingEqualsExplicitPad(t *testing.T) {
	// Packing into a margined buffer and convolving with pad must equal
	// explicitly padding the float tensor with −1 and convolving without
	// pad — the Fig. 5 equivalence.
	r := workload.NewRNG(43)
	cv, in, packed := buildConv(t, r, 6, 6, 64, 4, 3, 3, 1, 1)
	out := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
	cv.Forward(packed, out, exec.Serial())

	padded := in.PadSpatial(1, -1)
	want := baseline.ConvDirect(padded, bitpack.UnpackFilter(cv.Filter()), 1, 0, 0, 1)
	if !out.Equal(want) {
		t.Error("zero-cost padding != explicit −1 padding")
	}
}

func TestNewConvErrors(t *testing.T) {
	shape, _ := sched.InferConv(5, 5, 64, 2, 3, 3, 1, 1)
	plan := sched.Select(64, feat())
	r := workload.NewRNG(44)
	if _, err := NewConv(shape, plan, workload.PM1Filter(r, 2, 3, 3, 128)); err == nil {
		t.Error("mismatched filter channels: expected error")
	}
	if _, err := NewConv(shape, sched.Select(128, feat()), workload.PM1Filter(r, 2, 3, 3, 64)); err == nil {
		t.Error("plan for wrong C: expected error")
	}
	bigShape, _ := sched.InferConv(40, 40, 64, 2, 17, 17, 1, 0)
	if _, err := NewConv(bigShape, plan, workload.PM1Filter(r, 2, 17, 17, 64)); err == nil {
		t.Error("KH over maxKH: expected error")
	}
}

func TestConvInputValidationPanics(t *testing.T) {
	r := workload.NewRNG(45)
	cv, _, _ := buildConv(t, r, 5, 5, 64, 2, 3, 3, 1, 1)
	out := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
	cases := map[string]func(){
		"wrong interior": func() {
			bad := bitpack.NewPacked(4, 5, 64, 1, 1, 1)
			cv.Forward(bad, out, exec.Serial())
		},
		"wrong wpp": func() {
			bad := bitpack.NewPacked(5, 5, 64, 2, 1, 1)
			cv.Forward(bad, out, exec.Serial())
		},
		"missing margin": func() {
			bad := bitpack.NewPacked(5, 5, 64, 1, 0, 0)
			cv.Forward(bad, out, exec.Serial())
		},
		"wrong output": func() {
			good := cv.NewInput()
			cv.Forward(good, tensor.New(1, 1, 1), exec.Serial())
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPoolMatchesFloatReference(t *testing.T) {
	r := workload.NewRNG(46)
	for _, tc := range []struct{ h, w, c, kh, kw, stride int }{
		{4, 4, 64, 2, 2, 2},
		{6, 6, 512, 2, 2, 2},
		{5, 5, 100, 2, 2, 1}, // overlapping windows
		{9, 7, 3, 3, 3, 3},
		{4, 4, 65, 2, 2, 2},
	} {
		shape, err := sched.InferPool(tc.h, tc.w, tc.c, tc.kh, tc.kw, tc.stride)
		if err != nil {
			t.Fatal(err)
		}
		wpp := bitpack.WordsFor(tc.c)
		pl, err := NewPool(shape, wpp)
		if err != nil {
			t.Fatal(err)
		}
		in := workload.PM1Tensor(r, tc.h, tc.w, tc.c)
		pin := bitpack.PackTensor(in, wpp, 0, 0)
		pout := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, wpp, 0, 0)
		pl.Forward(pin, pout, exec.Serial())
		got := bitpack.Unpack(pout)
		want := baseline.MaxPoolFloat(in, tc.kh, tc.kw, tc.stride, 1)
		if !got.Equal(want) {
			t.Errorf("%+v: binary OR pool != float max pool", tc)
		}
	}
}

func TestPoolThreadsAgree(t *testing.T) {
	r := workload.NewRNG(47)
	shape, _ := sched.InferPool(8, 8, 512, 2, 2, 2)
	wpp := bitpack.WordsFor(512)
	pl, _ := NewPool(shape, wpp)
	in := workload.PM1Tensor(r, 8, 8, 512)
	pin := bitpack.PackTensor(in, wpp, 0, 0)
	serial := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, wpp, 0, 0)
	pl.Forward(pin, serial, exec.Serial())
	for _, threads := range []int{2, 7, 64} {
		out := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, wpp, 0, 0)
		pl.Forward(pin, out, exec.Threads(threads))
		for i := range serial.Words {
			if out.Words[i] != serial.Words[i] {
				t.Fatalf("threads=%d differs at word %d", threads, i)
			}
		}
	}
}

func TestPoolIntoMarginedOutput(t *testing.T) {
	// Pool writing into a margined buffer (feeding a padded conv) must
	// keep margins zero.
	r := workload.NewRNG(48)
	shape, _ := sched.InferPool(4, 4, 64, 2, 2, 2)
	pl, _ := NewPool(shape, 1)
	in := workload.PM1Tensor(r, 4, 4, 64)
	pin := bitpack.PackTensor(in, 1, 0, 0)
	pout := bitpack.NewPacked(2, 2, 64, 1, 1, 1)
	pl.Forward(pin, pout, exec.Serial())
	if !pout.MarginsAllZero() {
		t.Error("pool dirtied output margins")
	}
	if !bitpack.Unpack(pout).Equal(baseline.MaxPoolFloat(in, 2, 2, 2, 1)) {
		t.Error("pool interior wrong")
	}
}

func TestNewPoolError(t *testing.T) {
	shape, _ := sched.InferPool(4, 4, 128, 2, 2, 2)
	if _, err := NewPool(shape, 1); err == nil {
		t.Error("wpp too small: expected error")
	}
}

func TestDenseMatchesFloatReference(t *testing.T) {
	r := workload.NewRNG(49)
	for _, tc := range []struct{ n, k int }{
		{64, 10}, {128, 7}, {100, 5}, {512, 64}, {2048, 33}, {65, 1},
	} {
		shape, err := sched.InferFC(tc.n, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		plan := sched.Select(tc.n, feat())
		w := workload.PM1Matrix(r, tc.n, tc.k)
		d, err := NewDense(shape, plan, w)
		if err != nil {
			t.Fatal(err)
		}
		inVals := make([]float32, tc.n)
		for i := range inVals {
			inVals[i] = r.PM1()
		}
		in := d.NewInput()
		bitpack.PackVectorInto(in, inVals)
		got := make([]int32, tc.k)
		d.Forward(in, got, exec.Serial())
		want := make([]float32, tc.k)
		baseline.DenseFloat(inVals, w, want, 1)
		for i := range want {
			if float32(got[i]) != want[i] {
				t.Errorf("n=%d k=%d: out[%d] = %d want %v", tc.n, tc.k, i, got[i], want[i])
			}
		}
	}
}

func TestDenseForwardVariants(t *testing.T) {
	r := workload.NewRNG(50)
	n, k := 256, 70
	shape, _ := sched.InferFC(n, k)
	plan := sched.Select(n, feat())
	w := workload.PM1Matrix(r, n, k)
	d, _ := NewDense(shape, plan, w)
	inVals := make([]float32, n)
	for i := range inVals {
		inVals[i] = r.PM1()
	}
	in := d.NewInput()
	bitpack.PackVectorInto(in, inVals)

	ints := make([]int32, k)
	d.Forward(in, ints, exec.Threads(2))

	floats := make([]float32, k)
	d.ForwardFloat(in, floats, d.NewScratch(), exec.Threads(2))
	for i := range ints {
		if floats[i] != float32(ints[i]) {
			t.Fatalf("ForwardFloat[%d] = %v want %v", i, floats[i], ints[i])
		}
	}

	packedOut := make([]uint64, bitpack.WordsFor(k)+1)
	d.ForwardPacked(in, packedOut, d.NewScratch(), exec.Threads(2))
	back := bitpack.UnpackVector(packedOut, k)
	for i := range ints {
		want := float32(1)
		if ints[i] < 0 {
			want = -1
		}
		if back[i] != want {
			t.Fatalf("ForwardPacked[%d] = %v want %v", i, back[i], want)
		}
	}
	// Trailing word must be cleared.
	if packedOut[len(packedOut)-1] != 0 {
		t.Error("ForwardPacked left dirty trailing word")
	}
}

func TestNewDenseErrors(t *testing.T) {
	r := workload.NewRNG(51)
	shape, _ := sched.InferFC(64, 4)
	if _, err := NewDense(shape, sched.Select(64, feat()), workload.PM1Matrix(r, 65, 4)); err == nil {
		t.Error("wrong weight rows: expected error")
	}
	if _, err := NewDense(shape, sched.Select(128, feat()), workload.PM1Matrix(r, 64, 4)); err == nil {
		t.Error("plan for wrong N: expected error")
	}
}

// The old core-local parallelFor coverage test moved with the dispatcher
// to internal/exec (TestParallelForCoversRange); the operator-level
// threads-agree tests in this file keep pinning bit-exactness across
// budgets end to end.

// InferTestConv and testPlan are shared helpers for the extension tests:
// a 3×3/1/1 convolution geometry and its scheduler plan.
func InferTestConv(h, w, c, k int) (sched.ConvShape, error) {
	return sched.InferConv(h, w, c, k, 3, 3, 1, 1)
}

func testPlan(c int) sched.Plan { return sched.Select(c, feat()) }
