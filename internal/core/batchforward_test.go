package core

import (
	"testing"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

// TestConvForwardPackedBatchBitIdentical pins the batched conv to the
// sequential one, with and without folded thresholds, across batch sizes
// and both kernel tiers exercised by the VGG-style shapes.
func TestConvForwardPackedBatchBitIdentical(t *testing.T) {
	feat := sched.Detect()
	for _, g := range []struct {
		name       string
		h, w, c, k int
	}{
		{"w64", 12, 12, 64, 64},   // one word per pixel → scalar tier
		{"w128", 10, 10, 128, 96}, // two words per pixel → wider tier
		{"oddK", 8, 8, 64, 70},    // K not a multiple of 64: tail word
	} {
		t.Run(g.name, func(t *testing.T) {
			r := workload.NewRNG(77)
			shape, err := sched.InferConv(g.h, g.w, g.c, g.k, 3, 3, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			plan := sched.Select(g.c, feat)
			cv, err := NewConv(shape, plan, workload.PM1Filter(r, g.k, 3, 3, g.c))
			if err != nil {
				t.Fatal(err)
			}
			// Install non-trivial thresholds: every third channel flipped.
			th := NewThresholds(g.k)
			for c := range th.T {
				th.T[c] = int32(c%5 - 2)
				th.Flip[c] = c%3 == 0
			}
			if err := cv.SetThresholds(th); err != nil {
				t.Fatal(err)
			}
			outWords := sched.Select(g.k, feat).Words
			for _, B := range []int{1, 2, 3, 7, 16} {
				ins := make([]*bitpack.Packed, B)
				outs := make([]*bitpack.Packed, B)
				want := make([]*bitpack.Packed, B)
				for b := 0; b < B; b++ {
					ins[b] = cv.NewInput()
					bitpack.PackTensorInto(workload.PM1Tensor(r, g.h, g.w, g.c), ins[b])
					outs[b] = bitpack.NewPacked(shape.OutH, shape.OutW, g.k, outWords, 1, 1)
					want[b] = bitpack.NewPacked(shape.OutH, shape.OutW, g.k, outWords, 1, 1)
				}
				cv.ForwardPackedBatch(ins, outs, exec.Serial())
				for b := 0; b < B; b++ {
					cv.ForwardPacked(ins[b], want[b], exec.Serial())
					for i := range want[b].Words {
						if outs[b].Words[i] != want[b].Words[i] {
							t.Fatalf("B=%d image %d word %d: batched differs from sequential", B, b, i)
						}
					}
					if !outs[b].MarginsAllZero() {
						t.Fatalf("B=%d image %d: batched conv clobbered margins", B, b)
					}
				}
			}
		})
	}
}

// TestDenseBatchBitIdentical pins the batched dense paths (packed and
// float, with thresholds/affine) to the sequential ones.
func TestDenseBatchBitIdentical(t *testing.T) {
	feat := sched.Detect()
	r := workload.NewRNG(78)
	const N, K = 512, 70 // K with a tail word
	shape, err := sched.InferFC(N, K)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Select(N, feat)
	d, err := NewDense(shape, plan, workload.PM1Matrix(r, N, K))
	if err != nil {
		t.Fatal(err)
	}
	th := NewThresholds(K)
	for c := range th.T {
		th.T[c] = int32(c%7 - 3)
		th.Flip[c] = c%4 == 0
	}
	if err := d.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	aff := NewAffineFromBias(make([]float32, K))
	for c := range aff.Scale {
		aff.Scale[c] = float32(c%3) + 0.5
		aff.Shift[c] = float32(c) * 0.25
	}
	if err := d.SetAffine(aff); err != nil {
		t.Fatal(err)
	}
	for _, B := range []int{1, 2, 5, 8} {
		ins := make([][]uint64, B)
		for b := 0; b < B; b++ {
			ins[b] = d.NewInput()
			vals := make([]float32, N)
			for i := range vals {
				vals[i] = r.PM1()
			}
			bitpack.PackVectorInto(ins[b], vals)
		}
		// Packed path.
		outs := make([][]uint64, B)
		want := make([][]uint64, B)
		for b := 0; b < B; b++ {
			outs[b] = make([]uint64, bitpack.WordsFor(K))
			want[b] = make([]uint64, bitpack.WordsFor(K))
		}
		d.ForwardPackedBatch(ins, outs, &DenseBatchScratch{}, exec.Serial())
		for b := 0; b < B; b++ {
			d.ForwardPacked(ins[b], want[b], d.NewScratch(), exec.Serial())
			for i := range want[b] {
				if outs[b][i] != want[b][i] {
					t.Fatalf("packed B=%d image %d word %d differs", B, b, i)
				}
			}
		}
		// Float path.
		foutsB := make([][]float32, B)
		fwant := make([]float32, K)
		for b := 0; b < B; b++ {
			foutsB[b] = make([]float32, K)
		}
		d.ForwardFloatBatch(ins, foutsB, &DenseBatchScratch{}, exec.Serial())
		for b := 0; b < B; b++ {
			d.ForwardFloat(ins[b], fwant, d.NewScratch(), exec.Serial())
			for i := range fwant {
				if foutsB[b][i] != fwant[i] {
					t.Fatalf("float B=%d image %d logit %d differs", B, b, i)
				}
			}
		}
	}
}
