package core

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
)

// Pool is a binary max-pooling operator. It adopts the NHWC layout and
// channel-dimension bit-packing of PressedConv; the reduction replaces
// XOR/popcount with bitwise OR, "which is used to get the max of a
// sequence of ones and zeros" (paper §III-C): max over {−1,+1} encoded
// as {0,1} is exactly the OR of the bits.
type Pool struct {
	Shape sched.PoolShape
	// WPP is the packed word count per pixel shared by input and output
	// (channel count is unchanged by pooling).
	WPP int
}

// NewPool builds a binary max-pool operator operating on wpp-word pixels.
func NewPool(shape sched.PoolShape, wpp int) (*Pool, error) {
	if wpp < bitpack.WordsFor(shape.InC) {
		return nil, fmt.Errorf("core: pool wpp=%d too small for C=%d", wpp, shape.InC)
	}
	return &Pool{Shape: shape, WPP: wpp}, nil
}

// Forward OR-reduces each KH×KW window of in into out. in and out must
// both have WPP words per pixel; out margins are untouched. ec splits
// the fused OutH·OutW dimension.
func (pl *Pool) Forward(in, out *bitpack.Packed, ec *exec.Ctx) {
	s := pl.Shape
	if in.H != s.InH || in.W != s.InW || in.C != s.InC || in.WPP != pl.WPP {
		panic(fmt.Sprintf("core: pool input %v, want %dx%dx%d wpp=%d", in, s.InH, s.InW, s.InC, pl.WPP))
	}
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC || out.WPP != pl.WPP {
		panic(fmt.Sprintf("core: pool output %v, want %dx%dx%d wpp=%d", out, s.OutH, s.OutW, s.OutC, pl.WPP))
	}
	total := s.OutH * s.OutW
	wpp := pl.WPP
	rowLen := s.KW * wpp
	ec.ParallelFor(total, func(start, end int) {
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			dst := out.PixelWords(y, x)
			y0 := y * s.Stride
			x0 := x * s.Stride
			// First window row initializes dst, remaining rows OR in;
			// each row is a contiguous KW*wpp-word segment.
			off := in.PixelOffset(y0, x0)
			seg := in.Words[off : off+rowLen]
			for w := 0; w < wpp; w++ {
				acc := seg[w]
				for j := 1; j < s.KW; j++ {
					acc |= seg[j*wpp+w]
				}
				dst[w] = acc
			}
			for i := 1; i < s.KH; i++ {
				off = in.PixelOffset(y0+i, x0)
				seg = in.Words[off : off+rowLen]
				for j := 0; j < s.KW; j++ {
					kernels.OrInto(dst, seg[j*wpp:(j+1)*wpp])
				}
			}
		}
	})
}
