package core

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
)

// This file implements the kernel-compressed forward paths (Silfa &
// Arnau, "Exploiting Kernel Compression on BNNs"): operators whose
// packed weight bank repeats words across output channels carry a
// CompressPlan (built at construction, see NewConvPacked/NewDensePacked)
// and expose *Compressed variants of every forward entry point. The
// graph layer selects per network which variant runs — the operators
// themselves are shared read-only between compressed and uncompressed
// lanes, which is what makes the differential tests cheap. All
// compressed paths are bit-identical to their uncompressed twins: the
// accumulators sum the same integer popcounts, and the final
// threshold/pack pass is the very same Epilogue.

// Compression returns the conv's kernel-compression plan, or nil when
// the filter bank's duplication ratio did not clear the selection
// threshold (and none was forced via SetCompression).
func (cv *Conv) Compression() *kernels.CompressPlan { return cv.press }

// CompressionStats returns the duplication analysis of the packed
// filter bank, measured at construction regardless of selection.
func (cv *Conv) CompressionStats() kernels.CompressStats { return cv.pressStats }

// SetCompression forces a kernel-compression plan (or clears it with
// nil), overriding the load-time threshold selection — a hook for
// differential tests and benchmarks that need the compressed path on
// banks below the ratio threshold. The plan must match the filter
// bank's geometry.
func (cv *Conv) SetCompression(cp *kernels.CompressPlan) error {
	if cp != nil {
		if s := cv.Shape.KH * cv.rowLen; cp.K != cv.Shape.K || cp.S != s {
			return fmt.Errorf("core: compression plan %dx%d does not match conv bank %dx%d", cp.K, cp.S, cv.Shape.K, s)
		}
	}
	cv.press = cp
	return nil
}

// ForwardPackedCompressed is ForwardPacked through the compression
// plan: per output pixel, each distinct filter word pays one
// XOR+popcount, scatter-added into the K accumulators, then the same
// fused epilogue packs threshold bits. Panics if no plan is installed.
func (cv *Conv) ForwardPackedCompressed(in *bitpack.Packed, out *bitpack.Packed, ec *exec.Ctx) {
	cp := cv.press
	if cp == nil {
		panic("core: ForwardPackedCompressed without a compression plan")
	}
	cv.checkInput(in)
	s := cv.Shape
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: conv packed output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	rowLen := cv.rowLen
	n32 := int32(cv.validLanes)
	epi := cv.epi
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		// Per-worker scratch: row pointers plus the K popcount
		// accumulators the scatter-adds land in.
		var inRows [16][]uint64 //bitflow:alloc-ok one scratch per worker chunk, amortized across the chunk's pixels
		rows := inRows[:s.KH]
		acc := make([]int32, s.K) //bitflow:alloc-ok per-worker scratch, amortized across the chunk's pixels
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			y0 := y*s.Stride - s.Pad
			x0 := x*s.Stride - s.Pad
			for i := 0; i < s.KH && i < len(rows); i++ {
				off := in.PixelOffset(y0+i, x0)
				rows[i] = in.Words[off : off+rowLen : off+rowLen]
			}
			kernels.CompressedConvEpilogue(cp, rows, rowLen, n32, epi, acc, out.PixelWords(y, x))
		}
	})
}

// ForwardFusedCompressed is ForwardFused through the compression plan:
// the fused conv → threshold → binarize → max-pool sweep with the
// compressed accumulate per window position. A nil pl degenerates to
// ForwardPackedCompressed. Panics if no plan is installed.
func (cv *Conv) ForwardFusedCompressed(in *bitpack.Packed, pl *Pool, out *bitpack.Packed, ec *exec.Ctx) {
	cp := cv.press
	if cp == nil {
		panic("core: ForwardFusedCompressed without a compression plan")
	}
	if pl == nil {
		cv.ForwardPackedCompressed(in, out, ec)
		return
	}
	cv.checkInput(in)
	if !cv.CanFusePool(pl.Shape) {
		panic(fmt.Sprintf("core: pool %+v cannot fuse into conv %+v", pl.Shape, cv.Shape))
	}
	p := pl.Shape
	if out.H != p.OutH || out.W != p.OutW || out.C != p.OutC {
		panic(fmt.Sprintf("core: fused output %v, want %dx%dx%d", out, p.OutH, p.OutW, p.OutC))
	}
	s := cv.Shape
	rowLen := cv.rowLen
	n32 := int32(cv.validLanes)
	epi := cv.epi
	total := p.OutH * p.OutW
	ec.ParallelFor(total, func(start, end int) {
		var inRows [16][]uint64 //bitflow:alloc-ok one scratch per worker chunk, amortized across the chunk's pixels
		rows := inRows[:s.KH]
		acc := make([]int32, s.K) //bitflow:alloc-ok per-worker scratch, amortized across the chunk's pixels
		for idx := start; idx < end; idx++ {
			py := idx / p.OutW
			px := idx % p.OutW
			dst := out.PixelWords(py, px)
			for i := 0; i < p.KH; i++ {
				cy := py*p.Stride + i
				for j := 0; j < p.KW; j++ {
					cx := px*p.Stride + j
					y0 := cy*s.Stride - s.Pad
					x0 := cx*s.Stride - s.Pad
					for r := 0; r < s.KH && r < len(rows); r++ {
						off := in.PixelOffset(y0+r, x0)
						rows[r] = in.Words[off : off+rowLen : off+rowLen]
					}
					if i == 0 && j == 0 {
						kernels.CompressedConvEpilogue(cp, rows, rowLen, n32, epi, acc, dst)
					} else {
						kernels.CompressedConvEpilogueOr(cp, rows, rowLen, n32, epi, acc, dst)
					}
				}
			}
		}
	})
}

// ForwardPackedBatchCompressed is ForwardPackedBatch through the
// compression plan: the layer-major batched sweep with each image's
// gathered receptive field walked through the distinct-word table once.
func (cv *Conv) ForwardPackedBatchCompressed(ins, outs []*bitpack.Packed, ec *exec.Ctx) {
	cp := cv.press
	if cp == nil {
		panic("core: ForwardPackedBatchCompressed without a compression plan")
	}
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: conv batch %d inputs, %d outputs", B, len(outs)))
	}
	if B == 1 {
		cv.ForwardPackedCompressed(ins[0], outs[0], ec)
		return
	}
	s := cv.Shape
	for b := 0; b < B; b++ {
		cv.checkInput(ins[b])
		if outs[b].H != s.OutH || outs[b].W != s.OutW || outs[b].C != s.OutC {
			panic(fmt.Sprintf("core: conv packed output %v, want %dx%dx%d", outs[b], s.OutH, s.OutW, s.OutC))
		}
		if outs[b].WPP != outs[0].WPP {
			panic("core: conv batch outputs disagree on words per pixel")
		}
	}
	rowLen := cv.rowLen
	S := s.KH * rowLen
	packWPP := bitpack.WordsFor(s.K)
	n32 := int32(cv.validLanes)
	epi := cv.epi
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		gather := make([]uint64, B*S)     //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		accK := make([]int32, B*s.K)      //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		outW := make([]uint64, B*packWPP) //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			y0 := y*s.Stride - s.Pad
			x0 := x*s.Stride - s.Pad
			for b := 0; b < B; b++ {
				w := ins[b].Words
				dst := gather[b*S : (b+1)*S]
				for i := 0; i < s.KH; i++ {
					off := ins[b].PixelOffset(y0+i, x0)
					copy(dst[i*rowLen:(i+1)*rowLen], w[off:off+rowLen])
				}
			}
			kernels.CompressedConvBatchEpilogue(cp, gather, n32, epi, accK, outW, packWPP)
			for b := 0; b < B; b++ {
				dst := outs[b].PixelWords(y, x)
				n := copy(dst, outW[b*packWPP:(b+1)*packWPP])
				for ; n < len(dst); n++ {
					dst[n] = 0
				}
			}
		}
	})
}

// ForwardFusedBatchCompressed is ForwardFusedBatch through the
// compression plan. pl must satisfy CanFusePool; outs take the pool's
// output geometry. A nil pl degenerates to ForwardPackedBatchCompressed.
func (cv *Conv) ForwardFusedBatchCompressed(ins []*bitpack.Packed, pl *Pool, outs []*bitpack.Packed, ec *exec.Ctx) {
	cp := cv.press
	if cp == nil {
		panic("core: ForwardFusedBatchCompressed without a compression plan")
	}
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: conv batch %d inputs, %d outputs", B, len(outs)))
	}
	if B == 1 {
		cv.ForwardFusedCompressed(ins[0], pl, outs[0], ec)
		return
	}
	if pl == nil {
		cv.ForwardPackedBatchCompressed(ins, outs, ec)
		return
	}
	if !cv.CanFusePool(pl.Shape) {
		panic(fmt.Sprintf("core: pool %+v cannot fuse into conv %+v", pl.Shape, cv.Shape))
	}
	s := cv.Shape
	p := pl.Shape
	for b := 0; b < B; b++ {
		cv.checkInput(ins[b])
		if outs[b].H != p.OutH || outs[b].W != p.OutW || outs[b].C != p.OutC {
			panic(fmt.Sprintf("core: fused output %v, want %dx%dx%d", outs[b], p.OutH, p.OutW, p.OutC))
		}
		if outs[b].WPP != outs[0].WPP {
			panic("core: conv batch outputs disagree on words per pixel")
		}
	}
	rowLen := cv.rowLen
	S := s.KH * rowLen
	packWPP := bitpack.WordsFor(s.K)
	n32 := int32(cv.validLanes)
	epi := cv.epi
	total := p.OutH * p.OutW
	ec.ParallelFor(total, func(start, end int) {
		gather := make([]uint64, B*S)     //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		accK := make([]int32, B*s.K)      //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		outW := make([]uint64, B*packWPP) //bitflow:alloc-ok per-worker scratch, amortized over the whole batch
		for idx := start; idx < end; idx++ {
			py := idx / p.OutW
			px := idx % p.OutW
			for i := 0; i < p.KH; i++ {
				cy := py*p.Stride + i
				for j := 0; j < p.KW; j++ {
					cx := px*p.Stride + j
					y0 := cy*s.Stride - s.Pad
					x0 := cx*s.Stride - s.Pad
					for b := 0; b < B; b++ {
						w := ins[b].Words
						dst := gather[b*S : (b+1)*S]
						for r := 0; r < s.KH; r++ {
							off := ins[b].PixelOffset(y0+r, x0)
							copy(dst[r*rowLen:(r+1)*rowLen], w[off:off+rowLen])
						}
					}
					if i == 0 && j == 0 {
						kernels.CompressedConvBatchEpilogue(cp, gather, n32, epi, accK, outW, packWPP)
					} else {
						kernels.CompressedConvBatchEpilogueOr(cp, gather, n32, epi, accK, outW, packWPP)
					}
				}
			}
			for b := 0; b < B; b++ {
				dst := outs[b].PixelWords(py, px)
				n := copy(dst, outW[b*packWPP:(b+1)*packWPP])
				for ; n < len(dst); n++ {
					dst[n] = 0
				}
			}
		}
	})
}

// Compression returns the dense operator's kernel-compression plan, or
// nil when the weight matrix's duplication ratio did not clear the
// selection threshold (and none was forced via SetCompression).
func (d *Dense) Compression() *kernels.CompressPlan { return d.press }

// CompressionStats returns the duplication analysis of the packed
// weight matrix, measured at construction regardless of selection.
func (d *Dense) CompressionStats() kernels.CompressStats { return d.pressStats }

// SetCompression forces a kernel-compression plan (or clears it with
// nil), overriding the load-time threshold selection — a hook for
// differential tests and benchmarks.
func (d *Dense) SetCompression(cp *kernels.CompressPlan) error {
	if cp != nil && (cp.K != d.Shape.K || cp.S != d.Plan.Words) {
		return fmt.Errorf("core: compression plan %dx%d does not match dense bank %dx%d", cp.K, cp.S, d.Shape.K, d.Plan.Words)
	}
	d.press = cp
	return nil
}

// ForwardCompressed is Forward through the compression plan: each
// distinct weight word pays one XOR+popcount per input row. Panics if
// no plan is installed.
func (d *Dense) ForwardCompressed(in []uint64, out []int32, ec *exec.Ctx) {
	if d.press == nil {
		panic("core: ForwardCompressed without a compression plan")
	}
	if len(in) != d.Plan.Words {
		panic(fmt.Sprintf("core: dense input %d words, want %d", len(in), d.Plan.Words))
	}
	if len(out) != d.Shape.K {
		panic(fmt.Sprintf("core: dense output len %d, want K=%d", len(out), d.Shape.K))
	}
	kernels.BGemmCompressedExec(in, 1, d.press, d.Plan.Words, d.Shape.N, out, ec)
}

// ForwardFloatCompressed is ForwardFloat with the compressed GEMM.
func (d *Dense) ForwardFloatCompressed(in []uint64, out []float32, tmp []int32, ec *exec.Ctx) {
	if len(tmp) != d.Shape.K {
		panic(fmt.Sprintf("core: dense scratch len %d, want K=%d", len(tmp), d.Shape.K))
	}
	d.ForwardCompressed(in, tmp, ec)
	if d.affine != nil {
		d.affine.Apply(tmp, out)
		return
	}
	for i, v := range tmp {
		out[i] = float32(v)
	}
}

// ForwardPackedCompressed is ForwardPacked with the compressed GEMM.
func (d *Dense) ForwardPackedCompressed(in []uint64, out []uint64, tmp []int32, ec *exec.Ctx) {
	if len(tmp) != d.Shape.K {
		panic(fmt.Sprintf("core: dense scratch len %d, want K=%d", len(tmp), d.Shape.K))
	}
	d.ForwardCompressed(in, tmp, ec)
	if len(out) < bitpack.WordsFor(d.Shape.K) {
		panic("core: dense packed output too short")
	}
	d.packSigns(tmp, out)
}

// ForwardBatchCompressed is ForwardBatch with the compressed GEMM: one
// plan walk per image, split over rows across the thread budget.
func (d *Dense) ForwardBatchCompressed(ins [][]uint64, outs [][]int32, s *DenseBatchScratch, ec *exec.Ctx) {
	if d.press == nil {
		panic("core: ForwardBatchCompressed without a compression plan")
	}
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: dense batch %d inputs, %d outputs", B, len(outs)))
	}
	for b := 0; b < B; b++ {
		if len(ins[b]) != d.Plan.Words {
			panic(fmt.Sprintf("core: dense batch input %d has %d words, want %d", b, len(ins[b]), d.Plan.Words))
		}
		if len(outs[b]) != d.Shape.K {
			panic(fmt.Sprintf("core: dense batch output %d has len %d, want K=%d", b, len(outs[b]), d.Shape.K))
		}
	}
	s.Ensure(d, B)
	a := s.a[:B*d.Plan.Words]
	for b := 0; b < B; b++ {
		copy(a[b*d.Plan.Words:(b+1)*d.Plan.Words], ins[b])
	}
	out := s.prod[:B*d.Shape.K]
	kernels.BGemmCompressedExec(a, B, d.press, d.Plan.Words, d.Shape.N, out, ec)
	for b := 0; b < B; b++ {
		copy(outs[b], out[b*d.Shape.K:(b+1)*d.Shape.K])
	}
}

// ForwardPackedBatchCompressed is ForwardPackedBatch with the
// compressed GEMM.
func (d *Dense) ForwardPackedBatchCompressed(ins, outs [][]uint64, s *DenseBatchScratch, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: dense batch %d inputs, %d outputs", B, len(outs)))
	}
	s.Ensure(d, B)
	if B == 1 {
		d.ForwardPackedCompressed(ins[0], outs[0], s.rows[0], ec)
		return
	}
	tmp := s.rows[:B]
	d.ForwardBatchCompressed(ins, tmp, s, ec)
	for b := 0; b < B; b++ {
		if len(outs[b]) < bitpack.WordsFor(d.Shape.K) {
			panic("core: dense packed output too short")
		}
		d.packSigns(tmp[b], outs[b])
	}
}

// ForwardFloatBatchCompressed is ForwardFloatBatch with the compressed
// GEMM.
func (d *Dense) ForwardFloatBatchCompressed(ins [][]uint64, outs [][]float32, s *DenseBatchScratch, ec *exec.Ctx) {
	B := len(ins)
	if B == 0 || len(outs) != B {
		panic(fmt.Sprintf("core: dense batch %d inputs, %d outputs", B, len(outs)))
	}
	s.Ensure(d, B)
	if B == 1 {
		d.ForwardFloatCompressed(ins[0], outs[0], s.rows[0], ec)
		return
	}
	tmp := s.rows[:B]
	d.ForwardBatchCompressed(ins, tmp, s, ec)
	for b := 0; b < B; b++ {
		if d.affine != nil {
			d.affine.Apply(tmp[b], outs[b])
			continue
		}
		for i, v := range tmp[b] {
			outs[b][i] = float32(v)
		}
	}
}
