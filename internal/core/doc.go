// Package core implements BitFlow's primary contribution: the PressedConv
// binary convolution algorithm (paper §III-B, Algorithm 1) together with
// the binary fully connected and binary max-pooling operators built in
// the same style (§III-C).
//
// PressedConv abandons the conventional image-to-column method — which
// has low arithmetic intensity and an unfriendly pattern for bitwise
// operations when applied to binary convolution (§III-A) — and instead:
//
//  1. bit-packs the input tensor along the channel dimension (Fig. 3);
//  2. bit-packs the filters along the channel dimension (done once at
//     network initialization);
//  3. convolves the pressed operands directly: multiplications are XOR,
//     accumulations are popcount (Equation 1), with vector parallelism on
//     the C dimension and multi-core parallelism on the fused H and W
//     dimension (Algorithm 1).
//
// Spatial zero padding is realized at zero cost by pre-allocating margined
// buffers and writing convolution results into the interior (Fig. 5);
// margin words stay all-zero.
package core
