package core

import (
	"testing"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// dupFilter rewrites f so every filter k repeats base pattern k%bases —
// after binarization the packed words duplicate across channels with
// ratio ≥ K/bases, the adversarially high-duplication bank.
func dupFilter(f *tensor.Filter, bases int) {
	per := f.KH * f.KW * f.C
	for k := bases; k < f.K; k++ {
		copy(f.Data[k*per:(k+1)*per], f.Data[(k%bases)*per:(k%bases+1)*per])
	}
}

// forcePlan installs a compression plan regardless of the measured
// duplication ratio, so low-duplication banks exercise the compressed
// path too.
func forcePlan(t testing.TB, cv *Conv) {
	t.Helper()
	s := cv.Shape.KH * cv.rowLen // fstride: words per filter
	if err := cv.SetCompression(kernels.BuildCompressPlan(cv.filter.Words, cv.Shape.K, s)); err != nil {
		t.Fatal(err)
	}
}

// equalPacked compares the interiors of two packed planes word for word.
func equalPacked(t testing.TB, label string, want, got *bitpack.Packed) {
	t.Helper()
	for y := 0; y < want.H; y++ {
		for x := 0; x < want.W; x++ {
			ww := want.PixelWords(y, x)
			gw := got.PixelWords(y, x)
			for i := range ww {
				if ww[i] != gw[i] {
					t.Fatalf("%s: pixel (%d,%d) word %d = %016x, want %016x", label, y, x, i, gw[i], ww[i])
				}
			}
		}
	}
}

// buildDupConv is buildConv with an optional duplicated filter bank.
func buildDupConv(t testing.TB, r *workload.RNG, h, w, c, k, kh, kw int, bases int) (*Conv, *bitpack.Packed) {
	t.Helper()
	shape, err := sched.InferConv(h, w, c, k, kh, kw, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Select(c, feat())
	f := workload.PM1Filter(r, k, kh, kw, c)
	if bases > 0 {
		dupFilter(f, bases)
	}
	cv, err := NewConv(shape, plan, f)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.PM1Tensor(r, h, w, c)
	packed := cv.NewInput()
	bitpack.PackTensorInto(in, packed)
	return cv, packed
}

// TestCompressionAutoSelection pins the load-time threshold: a heavily
// duplicated bank selects the plan, a random wide bank does not (stats
// are still measured), and low-channel banks (the conv1.1 case, ≤ 2^C
// possible words per tap) auto-select.
func TestCompressionAutoSelection(t *testing.T) {
	r := workload.NewRNG(200)
	dup, _ := buildDupConv(t, r, 8, 8, 64, 64, 3, 3, 4)
	if dup.Compression() == nil {
		t.Fatalf("duplicated bank (ratio %v) not selected", dup.CompressionStats().Ratio())
	}
	if got := dup.CompressionStats().Ratio(); got < 16 {
		t.Fatalf("duplicated bank ratio %v, want ≥ 16 (K/bases)", got)
	}
	rnd, _ := buildDupConv(t, r, 8, 8, 64, 64, 3, 3, 0)
	if rnd.Compression() != nil {
		t.Fatalf("random 64-channel bank (ratio %v) unexpectedly selected", rnd.CompressionStats().Ratio())
	}
	if st := rnd.CompressionStats(); st.TotalWords == 0 || st.DistinctWords == 0 {
		t.Fatalf("stats not measured on unselected bank: %+v", st)
	}
	lowC, _ := buildDupConv(t, r, 8, 8, 3, 64, 3, 3, 0)
	if lowC.Compression() == nil {
		t.Fatalf("C=3 bank (≤8 distinct words/position, ratio %v) not selected", lowC.CompressionStats().Ratio())
	}
}

// TestConvCompressedMatchesUncompressed is the core differential pin:
// forced-compressed ForwardPacked/ForwardFused output equals the
// uncompressed path word for word, on high- and low-duplication banks,
// with and without folded thresholds, serial and threaded.
func TestConvCompressedMatchesUncompressed(t *testing.T) {
	r := workload.NewRNG(201)
	cases := []struct {
		name           string
		h, w, c, k     int
		kh, kw         int
		bases          int
		pkh, pkw, pstr int
	}{
		{"high-dup", 8, 8, 64, 70, 3, 3, 4, 2, 2, 2},
		{"low-dup", 8, 8, 128, 64, 3, 3, 0, 2, 2, 2},
		{"low-channel", 10, 10, 3, 64, 3, 3, 0, 2, 2, 2},
		{"ragged", 9, 7, 100, 33, 3, 3, 3, 2, 2, 2},
		{"1x1", 8, 8, 256, 128, 1, 1, 2, 2, 2, 2},
		{"5x5", 9, 9, 64, 32, 5, 5, 2, 3, 3, 3},
	}
	for _, tc := range cases {
		for _, withTh := range []bool{false, true} {
			cv, in := buildDupConv(t, r, tc.h, tc.w, tc.c, tc.k, tc.kh, tc.kw, tc.bases)
			if withTh {
				if err := cv.SetThresholds(randThresholds(r, tc.k, cv.validLanes)); err != nil {
					t.Fatal(err)
				}
			}
			forcePlan(t, cv)
			s := cv.Shape
			wpp := sched.Select(tc.k, feat()).Words
			want := bitpack.NewPacked(s.OutH, s.OutW, s.OutC, wpp, 1, 1)
			got := bitpack.NewPacked(s.OutH, s.OutW, s.OutC, wpp, 1, 1)
			for _, ec := range []*exec.Ctx{exec.Serial(), exec.Threads(3)} {
				cv.ForwardPacked(in, want, ec)
				cv.ForwardPackedCompressed(in, got, ec)
				equalPacked(t, tc.name+"/packed", want, got)
			}
			// Fused conv→pool, when the pool geometry is eligible.
			ps, err := sched.InferPool(s.OutH, s.OutW, s.OutC, tc.pkh, tc.pkw, tc.pstr)
			if err != nil || !cv.CanFusePool(ps) {
				continue
			}
			pl, err := NewPool(ps, wpp)
			if err != nil {
				t.Fatal(err)
			}
			fwant := bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 1, 1)
			fgot := bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 1, 1)
			for _, ec := range []*exec.Ctx{exec.Serial(), exec.Threads(3)} {
				cv.ForwardFused(in, pl, fwant, ec)
				cv.ForwardFusedCompressed(in, pl, fgot, ec)
				equalPacked(t, tc.name+"/fused", fwant, fgot)
			}
		}
	}
}

// TestConvCompressedBatchMatches pins the batched compressed paths
// against their uncompressed twins for B = 1..4.
func TestConvCompressedBatchMatches(t *testing.T) {
	r := workload.NewRNG(202)
	cv, _ := buildDupConv(t, r, 8, 8, 64, 48, 3, 3, 4)
	if cv.Compression() == nil {
		t.Fatal("duplicated bank not selected")
	}
	s := cv.Shape
	wpp := sched.Select(s.K, feat()).Words
	ps, err := sched.InferPool(s.OutH, s.OutW, s.OutC, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPool(ps, wpp)
	if err != nil {
		t.Fatal(err)
	}
	for B := 1; B <= 4; B++ {
		ins := make([]*bitpack.Packed, B)
		wantP := make([]*bitpack.Packed, B)
		gotP := make([]*bitpack.Packed, B)
		wantF := make([]*bitpack.Packed, B)
		gotF := make([]*bitpack.Packed, B)
		for b := 0; b < B; b++ {
			in := workload.PM1Tensor(r, 8, 8, 64)
			ins[b] = cv.NewInput()
			bitpack.PackTensorInto(in, ins[b])
			wantP[b] = bitpack.NewPacked(s.OutH, s.OutW, s.OutC, wpp, 0, 0)
			gotP[b] = bitpack.NewPacked(s.OutH, s.OutW, s.OutC, wpp, 0, 0)
			wantF[b] = bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 0, 0)
			gotF[b] = bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 0, 0)
		}
		for _, ec := range []*exec.Ctx{exec.Serial(), exec.Threads(3)} {
			cv.ForwardPackedBatch(ins, wantP, ec)
			cv.ForwardPackedBatchCompressed(ins, gotP, ec)
			for b := 0; b < B; b++ {
				equalPacked(t, "packed", wantP[b], gotP[b])
			}
			cv.ForwardFusedBatch(ins, pl, wantF, ec)
			cv.ForwardFusedBatchCompressed(ins, pl, gotF, ec)
			for b := 0; b < B; b++ {
				equalPacked(t, "fused", wantF[b], gotF[b])
			}
		}
	}
}

// TestDenseCompressedMatches pins every compressed dense entry point —
// int32, float (with affine), packed, and their batched forms — against
// the uncompressed paths.
func TestDenseCompressedMatches(t *testing.T) {
	r := workload.NewRNG(203)
	n, k := 256, 70
	shape, err := sched.InferFC(n, k)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Select(n, feat())
	w := workload.PM1Matrix(r, n, k)
	// Duplicate columns so the packed-transposed rows repeat: output unit
	// k's weights are column k, so repeating columns duplicates rows of Bᵀ.
	for row := 0; row < n; row++ {
		for col := 3; col < k; col++ {
			w.Data[row*k+col] = w.Data[row*k+col%3]
		}
	}
	d, err := NewDense(shape, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	if d.Compression() == nil {
		t.Fatalf("duplicated dense bank (ratio %v) not selected", d.CompressionStats().Ratio())
	}
	if err := d.SetThresholds(randThresholds(r, k, n)); err != nil {
		t.Fatal(err)
	}
	aff := make([]float32, k)
	for i := range aff {
		aff[i] = r.PM1()
	}
	if err := d.SetAffine(NewAffineFromBias(aff)); err != nil {
		t.Fatal(err)
	}

	B := 5
	ins := make([][]uint64, B)
	for b := 0; b < B; b++ {
		vals := make([]float32, n)
		for i := range vals {
			vals[i] = r.PM1()
		}
		ins[b] = d.NewInput()
		bitpack.PackVectorInto(ins[b], vals)
	}
	for _, ec := range []*exec.Ctx{exec.Serial(), exec.Threads(3)} {
		want, got := make([]int32, k), make([]int32, k)
		d.Forward(ins[0], want, ec)
		d.ForwardCompressed(ins[0], got, ec)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("ForwardCompressed[%d]=%d want %d", i, got[i], want[i])
			}
		}
		wf, gf := make([]float32, k), make([]float32, k)
		d.ForwardFloat(ins[0], wf, d.NewScratch(), ec)
		d.ForwardFloatCompressed(ins[0], gf, d.NewScratch(), ec)
		for i := range wf {
			if wf[i] != gf[i] {
				t.Fatalf("ForwardFloatCompressed[%d]=%v want %v", i, gf[i], wf[i])
			}
		}
		wp := make([]uint64, bitpack.WordsFor(k))
		gp := make([]uint64, bitpack.WordsFor(k))
		d.ForwardPacked(ins[0], wp, d.NewScratch(), ec)
		d.ForwardPackedCompressed(ins[0], gp, d.NewScratch(), ec)
		for i := range wp {
			if wp[i] != gp[i] {
				t.Fatalf("ForwardPackedCompressed word %d = %016x want %016x", i, gp[i], wp[i])
			}
		}
		// Batched forms.
		var sw, sg DenseBatchScratch
		wOuts := make([][]int32, B)
		gOuts := make([][]int32, B)
		for b := 0; b < B; b++ {
			wOuts[b], gOuts[b] = make([]int32, k), make([]int32, k)
		}
		d.ForwardBatch(ins, wOuts, &sw, ec)
		d.ForwardBatchCompressed(ins, gOuts, &sg, ec)
		for b := 0; b < B; b++ {
			for i := range wOuts[b] {
				if wOuts[b][i] != gOuts[b][i] {
					t.Fatalf("batch item %d: ForwardBatchCompressed[%d]=%d want %d", b, i, gOuts[b][i], wOuts[b][i])
				}
			}
		}
		wfB := make([][]float32, B)
		gfB := make([][]float32, B)
		wpB := make([][]uint64, B)
		gpB := make([][]uint64, B)
		for b := 0; b < B; b++ {
			wfB[b], gfB[b] = make([]float32, k), make([]float32, k)
			wpB[b], gpB[b] = make([]uint64, bitpack.WordsFor(k)), make([]uint64, bitpack.WordsFor(k))
		}
		d.ForwardFloatBatch(ins, wfB, &sw, ec)
		d.ForwardFloatBatchCompressed(ins, gfB, &sg, ec)
		d.ForwardPackedBatch(ins, wpB, &sw, ec)
		d.ForwardPackedBatchCompressed(ins, gpB, &sg, ec)
		for b := 0; b < B; b++ {
			for i := range wfB[b] {
				if wfB[b][i] != gfB[b][i] {
					t.Fatalf("batch item %d: float logit %d differs", b, i)
				}
			}
			for i := range wpB[b] {
				if wpB[b][i] != gpB[b][i] {
					t.Fatalf("batch item %d: packed word %d differs", b, i)
				}
			}
		}
	}
}

// TestSetCompressionValidates pins the geometry check and the nil-clear.
func TestSetCompressionValidates(t *testing.T) {
	r := workload.NewRNG(204)
	cv, _ := buildDupConv(t, r, 8, 8, 64, 32, 3, 3, 2)
	if err := cv.SetCompression(kernels.BuildCompressPlan(make([]uint64, 4*2), 4, 2)); err == nil {
		t.Fatal("mismatched conv plan accepted")
	}
	if err := cv.SetCompression(nil); err != nil || cv.Compression() != nil {
		t.Fatal("nil did not clear the conv plan")
	}
	shape, _ := sched.InferFC(128, 10)
	d, err := NewDense(shape, sched.Select(128, feat()), workload.PM1Matrix(r, 128, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetCompression(kernels.BuildCompressPlan(make([]uint64, 4*2), 4, 2)); err == nil {
		t.Fatal("mismatched dense plan accepted")
	}
	if err := d.SetCompression(nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzCompressedConv is the differential fuzz harness: arbitrary
// geometries and weight banks — including adversarially low- and
// high-duplication ones — must produce compressed output equal to the
// uncompressed PressedConv word for word, packed and fused. The seed
// corpus pins an all-words-identical bank (every filter the same, one
// distinct word per position) and an all-words-distinct one.
func FuzzCompressedConv(f *testing.F) {
	// seed, h, w, c, k, bases (0 = independent random filters,
	// 1 = all filters identical), withThresholds.
	f.Add(uint64(1), uint8(8), uint8(8), uint8(64), uint8(32), uint8(1), true)  // all words identical
	f.Add(uint64(2), uint8(8), uint8(8), uint8(255), uint8(16), uint8(0), true) // wide random: words distinct
	f.Add(uint64(3), uint8(6), uint8(9), uint8(3), uint8(40), uint8(0), false)  // conv1.1-style low channel
	f.Add(uint64(4), uint8(9), uint8(7), uint8(100), uint8(33), uint8(3), true) // ragged + 3 bases
	f.Add(uint64(5), uint8(5), uint8(5), uint8(64), uint8(1), uint8(0), false)  // single filter
	f.Fuzz(func(t *testing.T, seed uint64, hh, ww, cc, kk, bb uint8, withTh bool) {
		h := int(hh)%8 + 3
		w := int(ww)%8 + 3
		c := int(cc)%200 + 1
		k := int(kk)%72 + 1
		bases := 0
		if bb > 0 {
			bases = int(bb)%k + 1
		}
		r := workload.NewRNG(seed)
		shape, err := sched.InferConv(h, w, c, k, 3, 3, 1, 1)
		if err != nil {
			t.Skip()
		}
		plan := sched.Select(c, feat())
		fl := workload.PM1Filter(r, k, 3, 3, c)
		if bases > 0 {
			dupFilter(fl, bases)
		}
		cv, err := NewConv(shape, plan, fl)
		if err != nil {
			t.Skip()
		}
		if withTh {
			if err := cv.SetThresholds(randThresholds(r, k, cv.validLanes)); err != nil {
				t.Fatal(err)
			}
		}
		forcePlan(t, cv)
		in := workload.PM1Tensor(r, h, w, c)
		packed := cv.NewInput()
		bitpack.PackTensorInto(in, packed)
		s := cv.Shape
		wpp := sched.Select(k, feat()).Words
		want := bitpack.NewPacked(s.OutH, s.OutW, s.OutC, wpp, 0, 0)
		got := bitpack.NewPacked(s.OutH, s.OutW, s.OutC, wpp, 0, 0)
		cv.ForwardPacked(packed, want, exec.Serial())
		cv.ForwardPackedCompressed(packed, got, exec.Serial())
		equalPacked(t, "packed", want, got)
		if ps, err := sched.InferPool(s.OutH, s.OutW, s.OutC, 2, 2, 2); err == nil && cv.CanFusePool(ps) {
			pl, err := NewPool(ps, wpp)
			if err != nil {
				t.Fatal(err)
			}
			fwant := bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 0, 0)
			fgot := bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 0, 0)
			cv.ForwardFused(packed, pl, fwant, exec.Serial())
			cv.ForwardFusedCompressed(packed, pl, fgot, exec.Serial())
			equalPacked(t, "fused", fwant, fgot)
		}
	})
}
