package core

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// FloatConv is a full-precision convolution whose output is sign-packed —
// the mixed-precision first layer. The paper points at exactly this
// remedy for BNN accuracy loss ("Zhuang's work that compensates BNN's
// accuracy loss by keeping certain layers in full precision"): the first
// layer sees raw pixels, which binarize poorly, so real BNN deployments
// often keep it in float. FloatConv consumes the float input directly,
// applies an optional per-channel affine (bias or folded batch-norm) and
// the sign, and emits the packed bits the binary layers downstream eat.
//
// Spatial padding uses the float convention (pad value 0), unlike the
// binary layers whose bit-level padding means −1.
type FloatConv struct {
	Shape sched.ConvShape

	filter *tensor.Filter
	affine *Affine // optional, applied before the sign
}

// NewFloatConv builds the operator; the filter is retained in float (it
// is part of the model and serialized as floats).
func NewFloatConv(shape sched.ConvShape, f *tensor.Filter) (*FloatConv, error) {
	if f.K != shape.K || f.KH != shape.KH || f.KW != shape.KW || f.C != shape.InC {
		return nil, fmt.Errorf("core: filter %v does not match float conv shape %+v", f, shape)
	}
	return &FloatConv{Shape: shape, filter: f.Clone()}, nil
}

// Filter exposes the float filter bank (read-only use).
func (fc *FloatConv) Filter() *tensor.Filter { return fc.filter }

// OutAffine returns the pre-sign affine, or nil.
func (fc *FloatConv) OutAffine() *Affine { return fc.affine }

// SetAffine installs the per-channel affine applied before the sign.
func (fc *FloatConv) SetAffine(a *Affine) error {
	if a != nil {
		if err := a.validate(fc.Shape.K); err != nil {
			return err
		}
	}
	fc.affine = a
	return nil
}

// Forward convolves the float input and writes sign bits into out's
// interior (margins untouched, tail lanes cleared). ec splits the
// fused OutH·OutW dimension.
func (fc *FloatConv) Forward(in *tensor.Tensor, out *bitpack.Packed, ec *exec.Ctx) {
	s := fc.Shape
	if in.H != s.InH || in.W != s.InW || in.C != s.InC {
		panic(fmt.Sprintf("core: float conv input %v, want %dx%dx%d", in, s.InH, s.InW, s.InC))
	}
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: float conv output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		dots := make([]float32, s.K) //bitflow:alloc-ok per-worker scratch; the float stem runs once per image
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			fc.pixel(in, y, x, dots)
			fc.packPixel(dots, out.PixelWords(y, x))
		}
	})
}

// pixel computes the K float inner products of output pixel (y, x).
func (fc *FloatConv) pixel(in *tensor.Tensor, y, x int, dst []float32) {
	s := fc.Shape
	y0 := y*s.Stride - s.Pad
	x0 := x*s.Stride - s.Pad
	f := fc.filter
	for k := 0; k < s.K; k++ {
		var acc float32
		for i := 0; i < s.KH; i++ {
			sy := y0 + i
			if sy < 0 || sy >= in.H {
				continue // float zero padding contributes nothing
			}
			for j := 0; j < s.KW; j++ {
				sx := x0 + j
				if sx < 0 || sx >= in.W {
					continue
				}
				px := in.Pixel(sy, sx)
				tap := f.Tap(k, i, j)
				var t0, t1 float32
				c := 0
				for ; c+2 <= len(px); c += 2 {
					t0 += px[c] * tap[c]
					t1 += px[c+1] * tap[c+1]
				}
				acc += t0 + t1
				for ; c < len(px); c++ {
					acc += px[c] * tap[c]
				}
			}
		}
		dst[k] = acc
	}
}

// packPixel applies the affine and sign, writing packed bits.
func (fc *FloatConv) packPixel(dots []float32, dst []uint64) {
	a := fc.affine
	var word uint64
	wi := 0
	for k, v := range dots {
		if a != nil {
			v = a.Scale[k]*(v-a.Mean[k]) + a.Shift[k]
		}
		if v >= 0 {
			word |= 1 << uint(k%bitpack.WordBits)
		}
		if (k+1)%bitpack.WordBits == 0 {
			dst[wi] = word
			word = 0
			wi++
		}
	}
	if len(dots)%bitpack.WordBits != 0 {
		dst[wi] = word
		wi++
	}
	for ; wi < len(dst); wi++ {
		dst[wi] = 0
	}
}
