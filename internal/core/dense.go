package core

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// Dense is the binary fully connected operator: a binary matrix-matrix
// multiplication with M = 1 (paper §III-C). Vector parallelism runs over
// the N dimension (inside the XOR+popcount kernel), multi-core
// parallelism over the K dimension.
type Dense struct {
	Shape sched.FCShape
	Plan  sched.Plan // selected over N

	weights *bitpack.PackedMatrix // K rows × Plan.Words, fused transform
	// act is the folded activation of the packed path; nil = plain sign.
	act *Thresholds
	// epi is act pre-compiled into the branchless fused epilogue packSigns
	// runs; rebuilt by SetThresholds, never per inference.
	epi *kernels.Epilogue
	// affine post-processes the float path (ForwardFloat); nil = raw
	// inner products.
	affine *Affine
	// press is the kernel-compression plan compiled from the packed
	// weight matrix at construction when its duplication ratio clears
	// kernels.CompressMinRatio (nil otherwise); pressStats always holds
	// the measured analysis. Pure runtime state, never serialized.
	press      *kernels.CompressPlan
	pressStats kernels.CompressStats
}

// SetThresholds installs a folded activation (batch-norm or bias) for
// ForwardPacked. Pass nil to restore the plain sign.
func (d *Dense) SetThresholds(th *Thresholds) error {
	if th != nil {
		if err := th.validate(d.Shape.K); err != nil {
			return err
		}
	}
	d.act = th
	d.epi = th.Epilogue(d.Shape.K)
	return nil
}

// SetAffine installs a float affine (batch-norm or bias) applied by
// ForwardFloat — the classifier-layer counterpart of SetThresholds.
func (d *Dense) SetAffine(a *Affine) error {
	if a != nil {
		if err := a.validate(d.Shape.K); err != nil {
			return err
		}
	}
	d.affine = a
	return nil
}

// NewDense builds a binary dense operator from the float weight matrix w
// (N×K). Binarization, bit-packing and transposition of w are fused into
// a single pass (paper Table III) and happen once, here.
func NewDense(shape sched.FCShape, plan sched.Plan, w *tensor.Matrix) (*Dense, error) {
	if w.Rows != shape.N || w.Cols != shape.K {
		return nil, fmt.Errorf("core: dense weights %v, want %dx%d", w, shape.N, shape.K)
	}
	if plan.C != shape.N {
		return nil, fmt.Errorf("core: plan built for C=%d, dense has N=%d", plan.C, shape.N)
	}
	return NewDensePacked(shape, plan, bitpack.PackMatrixBT(w, plan.Words))
}

// NewDensePacked builds a binary dense operator from an already-packed
// (transposed) weight matrix, e.g. one deserialized from a model file.
func NewDensePacked(shape sched.FCShape, plan sched.Plan, pm *bitpack.PackedMatrix) (*Dense, error) {
	if pm.K != shape.K || pm.N != shape.N {
		return nil, fmt.Errorf("core: packed dense weights %v, want K=%d N=%d", pm, shape.K, shape.N)
	}
	if plan.C != shape.N {
		return nil, fmt.Errorf("core: plan built for C=%d, dense has N=%d", plan.C, shape.N)
	}
	if pm.WPR != plan.Words {
		return nil, fmt.Errorf("core: packed dense wpr=%d, plan wants %d", pm.WPR, plan.Words)
	}
	d := &Dense{Shape: shape, Plan: plan, weights: pm, epi: kernels.NewSignEpilogue(shape.K)}
	d.pressStats = kernels.AnalyzeCompression(pm.Words, shape.K, pm.WPR)
	if d.pressStats.Selectable() {
		d.press = kernels.BuildCompressPlan(pm.Words, shape.K, pm.WPR)
	}
	return d, nil
}

// Weights exposes the packed weight matrix (read-only use).
func (d *Dense) Weights() *bitpack.PackedMatrix { return d.weights }

// Activation returns the folded activation, or nil for the plain sign.
func (d *Dense) Activation() *Thresholds { return d.act }

// OutAffine returns the float-path affine, or nil for raw products.
func (d *Dense) OutAffine() *Affine { return d.affine }

// NewInput allocates a packed activation row for this operator.
func (d *Dense) NewInput() []uint64 { return make([]uint64, d.Plan.Words) }

// NewScratch allocates the K-length pre-activation scratch ForwardFloat
// and ForwardPacked require. Allocate once at build time and reuse per
// call — the per-inference path itself stays allocation-free.
func (d *Dense) NewScratch() []int32 { return make([]int32, d.Shape.K) }

// Forward computes the K inner products of the packed activation row in
// (Plan.Words words, N valid bits) into out (len K). ec splits the
// K dimension.
func (d *Dense) Forward(in []uint64, out []int32, ec *exec.Ctx) {
	if len(in) != d.Plan.Words {
		panic(fmt.Sprintf("core: dense input %d words, want %d", len(in), d.Plan.Words))
	}
	if len(out) != d.Shape.K {
		panic(fmt.Sprintf("core: dense output len %d, want K=%d", len(out), d.Shape.K))
	}
	opts := kernels.BGemmOpts{Kernel: d.Plan.Kernel}
	kernels.BGemmExec(in, 1, d.weights.Words, d.Shape.K, d.Plan.Words, d.Shape.N, out, opts, ec)
}

// ForwardFloat is Forward plus a float conversion and the optional
// affine (batch-norm/bias) post-processing — the final classifier path.
// tmp is caller-owned pre-activation scratch (len K, see NewScratch), so
// repeated inferences allocate nothing.
func (d *Dense) ForwardFloat(in []uint64, out []float32, tmp []int32, ec *exec.Ctx) {
	if len(tmp) != d.Shape.K {
		panic(fmt.Sprintf("core: dense scratch len %d, want K=%d", len(tmp), d.Shape.K))
	}
	d.Forward(in, tmp, ec)
	if d.affine != nil {
		d.affine.Apply(tmp, out)
		return
	}
	for i, v := range tmp {
		out[i] = float32(v)
	}
}

// ForwardPacked computes the K inner products and writes their sign bits
// into out (≥ WordsFor(K) words, trailing lanes cleared) — the fused
// activation for fc→fc chains (fc6 → sign → fc7). tmp is caller-owned
// pre-activation scratch (len K, see NewScratch).
func (d *Dense) ForwardPacked(in []uint64, out []uint64, tmp []int32, ec *exec.Ctx) {
	if len(tmp) != d.Shape.K {
		panic(fmt.Sprintf("core: dense scratch len %d, want K=%d", len(tmp), d.Shape.K))
	}
	d.Forward(in, tmp, ec)
	if len(out) < bitpack.WordsFor(d.Shape.K) {
		panic("core: dense packed output too short")
	}
	d.packSigns(tmp, out)
}
