package core

import (
	"testing"
	"testing/quick"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/workload"
)

func TestFloatConvMatchesBaselineConv(t *testing.T) {
	r := workload.NewRNG(85)
	for _, tc := range []struct{ h, w, c, k, kh, kw, stride, pad int }{
		{8, 8, 3, 16, 3, 3, 1, 1},  // the VGG first-layer geometry, scaled
		{6, 6, 5, 8, 3, 3, 1, 0},   // no padding
		{10, 10, 3, 4, 5, 5, 2, 2}, // strided 5×5
		{4, 4, 1, 70, 1, 1, 1, 0},  // 1×1, K spanning multiple words
	} {
		shape, err := sched.InferConv(tc.h, tc.w, tc.c, tc.k, tc.kh, tc.kw, tc.stride, tc.pad)
		if err != nil {
			t.Fatal(err)
		}
		in := workload.RandTensor(r, tc.h, tc.w, tc.c)
		filt := workload.RandFilter(r, tc.k, tc.kh, tc.kw, tc.c)
		fc, err := NewFloatConv(shape, filt)
		if err != nil {
			t.Fatal(err)
		}
		out := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, bitpack.WordsFor(shape.OutC), 1, 1)
		fc.Forward(in, out, exec.Threads(2))
		got := bitpack.Unpack(out)
		// Reference: float conv with zero padding, then sign.
		want := baseline.ConvDirect(in, filt, tc.stride, tc.pad, 0, 1).Sign()
		if !got.Equal(want) {
			t.Errorf("%+v: float conv sign bits differ", tc)
		}
		if !out.MarginsAllZero() {
			t.Errorf("%+v: margins dirtied", tc)
		}
		if !out.TailClean() {
			t.Errorf("%+v: tail lanes dirty", tc)
		}
	}
}

// TestFloatConvQuick: the property form over random geometries.
func TestFloatConvQuick(t *testing.T) {
	f := func(seed uint64, hh, cc, kk uint8) bool {
		h := int(hh)%5 + 3
		c := int(cc)%4 + 1
		k := int(kk)%20 + 1
		r := workload.NewRNG(seed)
		shape, err := sched.InferConv(h, h, c, k, 3, 3, 1, 1)
		if err != nil {
			return true
		}
		in := workload.RandTensor(r, h, h, c)
		filt := workload.RandFilter(r, k, 3, 3, c)
		fc, err := NewFloatConv(shape, filt)
		if err != nil {
			return false
		}
		out := bitpack.NewPacked(shape.OutH, shape.OutW, k, bitpack.WordsFor(k), 0, 0)
		fc.Forward(in, out, exec.Serial())
		want := baseline.ConvDirect(in, filt, 1, 1, 0, 1).Sign()
		return bitpack.Unpack(out).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFloatConvAffine(t *testing.T) {
	r := workload.NewRNG(86)
	shape, _ := sched.InferConv(5, 5, 3, 6, 3, 3, 1, 1)
	in := workload.RandTensor(r, 5, 5, 3)
	filt := workload.RandFilter(r, 6, 3, 3, 3)
	fc, err := NewFloatConv(shape, filt)
	if err != nil {
		t.Fatal(err)
	}
	bias := []float32{2, -2, 0.5, -0.5, 10, -10}
	if err := fc.SetAffine(NewAffineFromBias(bias)); err != nil {
		t.Fatal(err)
	}
	out := bitpack.NewPacked(5, 5, 6, 1, 0, 0)
	fc.Forward(in, out, exec.Serial())
	got := bitpack.Unpack(out)

	raw := baseline.ConvDirect(in, filt, 1, 1, 0, 1)
	for h := 0; h < 5; h++ {
		for w := 0; w < 5; w++ {
			for c := 0; c < 6; c++ {
				want := float32(-1)
				if raw.At(h, w, c)+bias[c] >= 0 {
					want = 1
				}
				if got.At(h, w, c) != want {
					t.Fatalf("(%d,%d,%d): got %v want %v", h, w, c, got.At(h, w, c), want)
				}
			}
		}
	}
	if err := fc.SetAffine(&Affine{Scale: make([]float32, 2)}); err == nil {
		t.Error("wrong-size affine: expected error")
	}
}

func TestNewFloatConvErrors(t *testing.T) {
	shape, _ := sched.InferConv(5, 5, 3, 6, 3, 3, 1, 1)
	r := workload.NewRNG(87)
	if _, err := NewFloatConv(shape, workload.RandFilter(r, 6, 3, 3, 4)); err == nil {
		t.Error("mismatched filter: expected error")
	}
}

func TestFloatConvInputValidationPanics(t *testing.T) {
	r := workload.NewRNG(88)
	shape, _ := sched.InferConv(5, 5, 3, 6, 3, 3, 1, 1)
	fc, _ := NewFloatConv(shape, workload.RandFilter(r, 6, 3, 3, 3))
	out := bitpack.NewPacked(5, 5, 6, 1, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("wrong input shape did not panic")
		}
	}()
	fc.Forward(workload.RandTensor(r, 4, 5, 3), out, exec.Serial())
}

func TestFloatConvFilterIsCopied(t *testing.T) {
	r := workload.NewRNG(89)
	shape, _ := sched.InferConv(4, 4, 2, 3, 3, 3, 1, 1)
	filt := workload.RandFilter(r, 3, 3, 3, 2)
	fc, _ := NewFloatConv(shape, filt)
	in := workload.RandTensor(r, 4, 4, 2)
	out := bitpack.NewPacked(4, 4, 3, 1, 0, 0)
	fc.Forward(in, out, exec.Serial())
	before := append([]uint64(nil), out.Words...)
	// Mutating the caller's filter must not affect the operator.
	for i := range filt.Data {
		filt.Data[i] = -filt.Data[i]
	}
	fc.Forward(in, out, exec.Serial())
	for i := range before {
		if out.Words[i] != before[i] {
			t.Fatal("operator aliased the caller's filter storage")
		}
	}
}
