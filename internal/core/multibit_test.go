package core

import (
	"math"
	"testing"
	"testing/quick"

	"bitflow/internal/exec"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func buildMultiBit(t testing.TB, r *workload.RNG, h, w, c, k, bits int, lo, hi float32) (*MultiBitConv, *tensor.Filter) {
	t.Helper()
	shape, err := InferTestConv(h, w, c, k)
	if err != nil {
		t.Fatal(err)
	}
	plan := testPlan(c)
	f := workload.RandFilter(r, k, 3, 3, c)
	mb, err := NewMultiBitConv(shape, plan, f, bits, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return mb, f
}

func TestMultiBitMatchesQuantizedReference(t *testing.T) {
	r := workload.NewRNG(170)
	for _, tc := range []struct {
		c, k, bits int
		lo, hi     float32
	}{
		{64, 4, 2, 0, 1},   // DoReFa's 2-bit [0,1]
		{64, 4, 1, 0, 1},   // degenerate 1-bit
		{100, 3, 3, -1, 1}, // signed range, padded channels
		{128, 5, 4, 0, 2},
	} {
		mb, f := buildMultiBit(t, r, 6, 6, tc.c, tc.k, tc.bits, tc.lo, tc.hi)
		in := workload.RandTensor(r, 6, 6, tc.c)
		planes := mb.NewPlanes()
		mb.PackPlanes(in, planes)
		out := tensor.New(mb.Shape.OutH, mb.Shape.OutW, mb.Shape.OutC)
		mb.Forward(planes, out, exec.Threads(2))
		want := mb.Reference(in, f.Sign())
		if d := out.MaxAbsDiff(want); d > 1e-3 {
			t.Errorf("%+v: multibit vs reference max diff %g", tc, d)
		}
	}
}

// TestMultiBitQuick: property form over random bit widths and ranges.
func TestMultiBitQuick(t *testing.T) {
	f := func(seed uint64, bb, cc uint8) bool {
		bits := int(bb)%4 + 1
		c := int(cc)%100 + 1
		r := workload.NewRNG(seed)
		shape, err := InferTestConv(5, 5, c, 3)
		if err != nil {
			return true
		}
		filt := workload.RandFilter(r, 3, 3, 3, c)
		mb, err := NewMultiBitConv(shape, testPlan(c), filt, bits, -0.5, 1.5)
		if err != nil {
			return false
		}
		in := workload.RandTensor(r, 5, 5, c)
		planes := mb.NewPlanes()
		mb.PackPlanes(in, planes)
		out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		mb.Forward(planes, out, exec.Serial())
		return out.MaxAbsDiff(mb.Reference(in, filt.Sign())) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMultiBitQuantize(t *testing.T) {
	r := workload.NewRNG(171)
	mb, _ := buildMultiBit(t, r, 4, 4, 64, 2, 2, 0, 1)
	cases := map[float32]int{-5: 0, 0: 0, 0.34: 1, 0.5: 2, 0.67: 2, 1: 3, 7: 3}
	for v, want := range cases {
		if got := mb.Quantize(v); got != want {
			t.Errorf("Quantize(%v) = %d want %d", v, got, want)
		}
	}
}

func TestMultiBitPrecisionImprovesWithBits(t *testing.T) {
	// Against the *unquantized* float conv, more activation bits must
	// reduce the error.
	r := workload.NewRNG(172)
	shape, _ := InferTestConv(6, 6, 64, 4)
	filt := workload.RandFilter(r, 4, 3, 3, 64)
	in := workload.RandTensor(r, 6, 6, 64) // values in [-1, 1)
	fb := filt.Sign()

	// True reference: direct conv of the raw (unquantized) activations
	// with the binarized weights, padding with −1 (our lo).
	trueRef := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	for y := 0; y < shape.OutH; y++ {
		for x := 0; x < shape.OutW; x++ {
			for k := 0; k < 4; k++ {
				var acc float32
				for i := 0; i < 3; i++ {
					for j := 0; j < 3; j++ {
						sy, sx := y+i-1, x+j-1
						tap := fb.Tap(k, i, j)
						if sy < 0 || sy >= 6 || sx < 0 || sx >= 6 {
							for c := range tap {
								acc += -1 * tap[c]
							}
							continue
						}
						px := in.Pixel(sy, sx)
						for c := range tap {
							acc += px[c] * tap[c]
						}
					}
				}
				trueRef.Set(y, x, k, acc)
			}
		}
	}

	prev := math.Inf(1)
	for _, bits := range []int{1, 2, 4, 6} {
		mb, err := NewMultiBitConv(shape, testPlan(64), filt, bits, -1, 1)
		if err != nil {
			t.Fatal(err)
		}
		planes := mb.NewPlanes()
		mb.PackPlanes(in, planes)
		out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		mb.Forward(planes, out, exec.Serial())
		errNow := out.MaxAbsDiff(trueRef)
		if errNow >= prev {
			t.Errorf("bits=%d: error %.4f did not decrease (prev %.4f)", bits, errNow, prev)
		}
		prev = errNow
	}
	// 576 lanes × step/2 ≈ 0.016 accumulate as a random walk: ~0.4
	// typical, ≈3% of the ~24-magnitude outputs. Anything past 1.5 means
	// the plane decode is broken rather than just quantization noise.
	if prev > 1.5 {
		t.Errorf("6-bit error %.3f beyond quantization noise", prev)
	}
}

func TestMultiBitErrors(t *testing.T) {
	r := workload.NewRNG(173)
	shape, _ := InferTestConv(4, 4, 64, 2)
	f := workload.RandFilter(r, 2, 3, 3, 64)
	if _, err := NewMultiBitConv(shape, testPlan(64), f, 0, 0, 1); err == nil {
		t.Error("0 bits: expected error")
	}
	if _, err := NewMultiBitConv(shape, testPlan(64), f, 9, 0, 1); err == nil {
		t.Error("9 bits: expected error")
	}
	if _, err := NewMultiBitConv(shape, testPlan(64), f, 2, 1, 1); err == nil {
		t.Error("empty range: expected error")
	}
}
