package core

import (
	"fmt"
	"math"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// MultiBitConv generalizes binary convolution to multi-bit *activations*
// with binary weights — the DoReFa-Net direction the paper cites ([31]
// Zhou et al.): an activation quantized to B bits decomposes into B
// binary bit-planes, and since convolution is linear,
//
//	conv(a, Wᵇ) = Σₜ 2ᵗ · bconv(aₜ, Wᵇ) + offset·Σ Wᵇ
//
// where aₜ is bit t of the quantized activation. Every plane runs on the
// unmodified PressedConv kernels, so B-bit activations cost B binary
// convolutions — the same trade MultiBaseConv makes on the weight side.
//
// Activations are quantized uniformly to {0, 1, …, 2ᴮ−1} over a caller-
// supplied range [lo, hi] (DoReFa clamps to [0, 1]); each plane packs
// with the standard channel-dimension layout.
type MultiBitConv struct {
	Shape sched.ConvShape
	Plan  sched.Plan
	// Bits is the activation bit width B.
	Bits int
	// Lo and Hi bound the quantization range.
	Lo, Hi float32

	conv *Conv // shared binary machinery over the packed planes
	// weightSums[k] = Σ filter k's ±1 weights, for the offset term.
	weightSums []int32
}

// NewMultiBitConv builds the operator: weights binarize once (sign), the
// activation range [lo, hi] quantizes to 2^bits levels.
func NewMultiBitConv(shape sched.ConvShape, plan sched.Plan, f *tensor.Filter, bits int, lo, hi float32) (*MultiBitConv, error) {
	if bits < 1 || bits > 8 {
		return nil, fmt.Errorf("core: activation bits %d outside [1, 8]", bits)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("core: quantization range [%v, %v] is empty", lo, hi)
	}
	cv, err := NewConv(shape, plan, f)
	if err != nil {
		return nil, err
	}
	mb := &MultiBitConv{
		Shape: shape, Plan: plan, Bits: bits, Lo: lo, Hi: hi,
		conv:       cv,
		weightSums: make([]int32, shape.K),
	}
	fb := f.Sign()
	perFilter := shape.KH * shape.KW * shape.InC
	for k := 0; k < shape.K; k++ {
		var s int32
		for i := 0; i < perFilter; i++ {
			s += int32(fb.Data[k*perFilter+i])
		}
		mb.weightSums[k] = s
	}
	return mb, nil
}

// Quantize maps v into the integer level grid {0 … 2^Bits−1}.
func (mb *MultiBitConv) Quantize(v float32) int {
	levels := 1<<mb.Bits - 1
	q := int(math.Round(float64(v-mb.Lo) / float64(mb.Hi-mb.Lo) * float64(levels)))
	if q < 0 {
		q = 0
	}
	if q > levels {
		q = levels
	}
	return q
}

// step returns the quantization step size in activation units.
func (mb *MultiBitConv) step() float32 {
	return (mb.Hi - mb.Lo) / float32(int(1)<<mb.Bits-1)
}

// NewPlanes allocates the B packed bit-plane buffers with the operator's
// margins.
func (mb *MultiBitConv) NewPlanes() []*bitpack.Packed {
	planes := make([]*bitpack.Packed, mb.Bits)
	for t := range planes {
		planes[t] = bitpack.NewPacked(mb.Shape.InH, mb.Shape.InW, mb.Shape.InC,
			mb.Plan.Words, mb.Shape.Pad, mb.Shape.Pad)
	}
	return planes
}

// PackPlanes quantizes in and writes its bit-planes (plane t holds bit t
// of each quantized activation; a set bit packs as +1, clear as −1, and
// the decode below corrects for the offset).
func (mb *MultiBitConv) PackPlanes(in *tensor.Tensor, planes []*bitpack.Packed) {
	if in.H != mb.Shape.InH || in.W != mb.Shape.InW || in.C != mb.Shape.InC {
		panic(fmt.Sprintf("core: multibit input %v, want %dx%dx%d", in, mb.Shape.InH, mb.Shape.InW, mb.Shape.InC))
	}
	if len(planes) != mb.Bits {
		panic(fmt.Sprintf("core: %d planes, want %d", len(planes), mb.Bits))
	}
	for h := 0; h < in.H; h++ {
		for w := 0; w < in.W; w++ {
			px := in.Pixel(h, w)
			for t := 0; t < mb.Bits; t++ {
				words := planes[t].PixelWords(h, w)
				clear(words)
				for c, v := range px {
					if mb.Quantize(v)>>t&1 == 1 {
						words[c/bitpack.WordBits] |= 1 << (uint(c) % bitpack.WordBits)
					}
				}
			}
		}
	}
}

// Forward computes the multi-bit convolution into out (float32). Padding
// quantizes like activation value Lo (all plane bits clear), mirroring
// DoReFa's clamp-to-zero padding when Lo = 0.
func (mb *MultiBitConv) Forward(planes []*bitpack.Packed, out *tensor.Tensor, ec *exec.Ctx) {
	s := mb.Shape
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: multibit output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	// Each plane's ±1 inner product dₜ relates to the 0/1-valued bit
	// convolution by bit·w = (d + Σw)/2. Summing planes with weights 2ᵗ
	// and mapping levels back through lo + step·q gives:
	//   conv = lo·Σw + step·Σₜ 2ᵗ·(dₜ + Σw)/2
	scratch := tensor.New(s.OutH, s.OutW, s.OutC)
	out.Zero()
	step := mb.step()
	for t := 0; t < mb.Bits; t++ {
		mb.conv.Forward(planes[t], scratch, ec)
		w := step * float32(int32(1)<<uint(t)) / 2
		for i, v := range scratch.Data {
			out.Data[i] += w * v
		}
	}
	// Constant offsets per output channel.
	planeSum := float32(int(1)<<mb.Bits-1) / 2 // Σ 2ᵗ/2
	for i := range out.Data {
		k := i % s.OutC
		out.Data[i] += (mb.Lo + step*planeSum) * float32(mb.weightSums[k])
	}
}

// Reference computes the same quantized convolution directly in float
// space (for tests): conv(lo + step·q(a), sign(W)) with quantized-lo
// padding.
func (mb *MultiBitConv) Reference(in *tensor.Tensor, fb *tensor.Filter) *tensor.Tensor {
	s := mb.Shape
	q := tensor.New(in.H, in.W, in.C)
	stepv := mb.step()
	for i, v := range in.Data {
		q.Data[i] = mb.Lo + stepv*float32(mb.Quantize(v))
	}
	out := tensor.New(s.OutH, s.OutW, s.OutC)
	for y := 0; y < s.OutH; y++ {
		for x := 0; x < s.OutW; x++ {
			dst := out.Pixel(y, x)
			for k := 0; k < s.K; k++ {
				var acc float32
				for i := 0; i < s.KH; i++ {
					sy := y*s.Stride - s.Pad + i
					for j := 0; j < s.KW; j++ {
						sx := x*s.Stride - s.Pad + j
						tap := fb.Tap(k, i, j)
						if sy < 0 || sy >= in.H || sx < 0 || sx >= in.W {
							for c := range tap {
								acc += mb.Lo * tap[c]
							}
							continue
						}
						px := q.Pixel(sy, sx)
						for c := range tap {
							acc += px[c] * tap[c]
						}
					}
				}
				dst[k] = acc
			}
		}
	}
	return out
}

// ForwardFused computes the multi-bit convolution with a per-channel
// float threshold → binarize epilogue fused in, writing packed bits
// straight into out. Unlike Forward, which materializes one float plane
// per bit-plane pass plus the float output plane, the fused form walks
// the B planes per output pixel and never touches a float activation
// buffer. thr holds the per-filter thresholds (bit = acc ≥ thr[k]); nil
// means 0. out takes the conv's output geometry.
//
//bitflow:hot
func (mb *MultiBitConv) ForwardFused(planes []*bitpack.Packed, thr []float32, out *bitpack.Packed, ec *exec.Ctx) {
	s := mb.Shape
	if len(planes) != mb.Bits {
		panic(fmt.Sprintf("core: %d planes, want %d", len(planes), mb.Bits))
	}
	for _, p := range planes {
		if p.H != s.InH || p.W != s.InW || p.C != s.InC || p.WPP != mb.Plan.Words {
			panic(fmt.Sprintf("core: multibit plane %v, want %dx%dx%d wpp=%d", p, s.InH, s.InW, s.InC, mb.Plan.Words))
		}
		if p.MarginH < s.Pad || p.MarginW < s.Pad {
			panic("core: multibit plane margins too small")
		}
	}
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: multibit output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	if thr != nil && len(thr) != s.K {
		panic(fmt.Sprintf("core: multibit thresholds len %d, want K=%d", len(thr), s.K))
	}
	cv := mb.conv
	f := cv.rowsKernel
	n32 := int32(cv.validLanes)
	rowLen := cv.rowLen
	fstride := s.KH * rowLen
	fw := cv.filter.Words
	step := mb.step()
	planeSum := float32(int(1)<<mb.Bits-1) / 2
	offsetScale := mb.Lo + step*planeSum
	total := s.OutH * s.OutW
	ws := mb.weightSums
	ec.ParallelFor(total, func(start, end int) {
		// One hoisted row set per bit-plane (Bits ≤ 8, KH ≤ 16).
		var planeRows [8][16][]uint64 //bitflow:alloc-ok one scratch per worker chunk; the row slices leak into the indirect kernel call
		// Clamp KH against the scratch capacity once: the no-op clamp is
		// what lets the prover discharge every planeRows access below.
		kh := s.KH
		if kh > len(planeRows[0]) {
			kh = len(planeRows[0])
		}
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			y0 := y*s.Stride - s.Pad
			x0 := x*s.Stride - s.Pad
			for t := range planeRows {
				if t >= len(planes) {
					break
				}
				pl := planes[t]
				pr := &planeRows[t]
				for i := 0; i < kh; i++ {
					off := pl.PixelOffset(y0+i, x0)
					pr[i] = pl.Words[off : off+rowLen : off+rowLen] //bitflow:bce-ok one slice per filter row; the pixel-offset arithmetic is opaque to the prover
				}
			}
			// Word-major packing: the output cursor dw and the bit shift
			// advance together, so every per-filter access below is
			// compiler-proven in bounds (`bitflow-vet codegen`).
			dw := out.PixelWords(y, x) //bitflow:bce-ok inlined PixelWords slicing; once per output pixel, amortized over K filters of kernel calls
			var word uint64
			shift := uint(0)
			for k := 0; k < s.K; k++ {
				base := k * fstride
				// Accumulate planes first, offset last — the exact float
				// addition order of Forward, so fused bits match it even at
				// rounding boundaries.
				var acc float32
				for t := range planeRows {
					if t >= len(planes) {
						break
					}
					pop := f(planeRows[t][:kh], fw[base:base+fstride:base+fstride]) //bitflow:bce-ok once per (filter, plane), amortized over the fstride-word kernel call
					w := step * float32(int32(1)<<uint(t)) / 2
					acc += w * float32(n32-2*int32(pop))
				}
				if k < len(ws) {
					acc += offsetScale * float32(ws[k])
				}
				// k < len(thr) is the nil check too: nil thr has length 0
				// and every filter falls back to the plain sign threshold.
				var th float32
				if k < len(thr) {
					th = thr[k]
				}
				if acc >= th {
					word |= 1 << shift
				}
				if shift++; shift == bitpack.WordBits {
					if len(dw) > 0 {
						dw[0] = word
						dw = dw[1:]
					}
					word, shift = 0, 0
				}
			}
			if shift != 0 && len(dw) > 0 {
				dw[0] = word
				dw = dw[1:]
			}
			for len(dw) > 0 {
				dw[0] = 0
				dw = dw[1:]
			}
		}
	})
}
