package core

import (
	"fmt"
	"math"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// MultiBaseConv approximates a full-precision convolution as a linear
// combination of M binary convolutions:
//
//	W ≈ Σₘ αₘ·Bₘ   ⇒   conv(x, W) ≈ Σₘ αₘ·bconv(xᵇ, Bₘ)
//
// — the accuracy-recovery direction the paper points at ("Lin's work
// that approximates full-precision weights with the linear combination
// of multiple binary weight base", ABC-Net). Every bconv runs on the
// same PressedConv machinery (XOR+popcount at the scheduled width), so
// the cost is M× a binary convolution while the weight representation
// approaches full precision as M grows. α is per base per output filter.
type MultiBaseConv struct {
	Shape sched.ConvShape
	Plan  sched.Plan
	// M is the number of binary bases.
	M int

	bases  []*bitpack.PackedFilter // M packed filter banks
	alphas [][]float32             // [m][k] scale of base m, filter k

	rowsKernel kernels.XorPopRowsFunc
	validLanes int
	rowLen     int
}

// FitMultiBase decomposes a float filter bank into M binary bases with
// per-filter scales by greedy residual binarization (ABC-Net's direct
// scheme): B₁ = sign(W), α₁ₖ = mean|Wₖ|, then recurse on the residual
// W − α₁B₁.
func FitMultiBase(f *tensor.Filter, m int) ([]*tensor.Filter, [][]float32, error) {
	if m < 1 {
		return nil, nil, fmt.Errorf("core: need at least one base, got %d", m)
	}
	perFilter := f.KH * f.KW * f.C
	residual := f.Clone()
	bases := make([]*tensor.Filter, 0, m)
	alphas := make([][]float32, 0, m)
	for base := 0; base < m; base++ {
		b := residual.Sign()
		alpha := make([]float32, f.K)
		for k := 0; k < f.K; k++ {
			var sum float64
			off := k * perFilter
			for i := 0; i < perFilter; i++ {
				sum += math.Abs(float64(residual.Data[off+i]))
			}
			alpha[k] = float32(sum / float64(perFilter))
		}
		for k := 0; k < f.K; k++ {
			off := k * perFilter
			for i := 0; i < perFilter; i++ {
				residual.Data[off+i] -= alpha[k] * b.Data[off+i]
			}
		}
		bases = append(bases, b)
		alphas = append(alphas, alpha)
	}
	return bases, alphas, nil
}

// NewMultiBaseConv fits f into m binary bases and builds the operator.
func NewMultiBaseConv(shape sched.ConvShape, plan sched.Plan, f *tensor.Filter, m int) (*MultiBaseConv, error) {
	if f.K != shape.K || f.KH != shape.KH || f.KW != shape.KW || f.C != shape.InC {
		return nil, fmt.Errorf("core: filter %v does not match conv shape %+v", f, shape)
	}
	if plan.C != shape.InC {
		return nil, fmt.Errorf("core: plan built for C=%d, conv has InC=%d", plan.C, shape.InC)
	}
	if shape.KH > maxKH {
		return nil, fmt.Errorf("core: filter height %d exceeds supported maximum %d", shape.KH, maxKH)
	}
	bases, alphas, err := FitMultiBase(f, m)
	if err != nil {
		return nil, err
	}
	mc := &MultiBaseConv{
		Shape: shape, Plan: plan, M: m,
		alphas:     alphas,
		rowsKernel: kernels.RowsForWidth(plan.Width),
		validLanes: shape.KH * shape.KW * shape.InC,
		rowLen:     shape.KW * plan.Words,
	}
	for _, b := range bases {
		mc.bases = append(mc.bases, bitpack.PackFilter(b, plan.Words))
	}
	return mc, nil
}

// Alphas exposes the fitted scales (read-only use).
func (mc *MultiBaseConv) Alphas() [][]float32 { return mc.alphas }

// NewInput allocates a packed input buffer with this operator's margins.
func (mc *MultiBaseConv) NewInput() *bitpack.Packed {
	return bitpack.NewPacked(mc.Shape.InH, mc.Shape.InW, mc.Shape.InC, mc.Plan.Words, mc.Shape.Pad, mc.Shape.Pad)
}

// Forward computes the M-base approximation into out (float32,
// OutH×OutW×K). Inputs are binary (packed); only the weights gain
// precision from the extra bases.
func (mc *MultiBaseConv) Forward(in *bitpack.Packed, out *tensor.Tensor, ec *exec.Ctx) {
	s := mc.Shape
	if in.H != s.InH || in.W != s.InW || in.C != s.InC || in.WPP != mc.Plan.Words {
		panic(fmt.Sprintf("core: multibase input %v, want %dx%dx%d wpp=%d", in, s.InH, s.InW, s.InC, mc.Plan.Words))
	}
	if in.MarginH < s.Pad || in.MarginW < s.Pad {
		panic("core: multibase input margins too small")
	}
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: multibase output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			mc.pixelInto(in, y, x, out.Pixel(y, x))
		}
	})
}

func (mc *MultiBaseConv) pixelInto(in *bitpack.Packed, y, x int, dst []float32) {
	s := mc.Shape
	f := mc.rowsKernel
	n32 := int32(mc.validLanes)
	rowLen := mc.rowLen
	y0 := y*s.Stride - s.Pad
	x0 := x*s.Stride - s.Pad
	var inRows [16][]uint64
	rows := inRows[:s.KH]
	for i := 0; i < s.KH; i++ {
		off := in.PixelOffset(y0+i, x0)
		rows[i] = in.Words[off : off+rowLen : off+rowLen]
	}
	fstride := s.KH * rowLen
	for k := 0; k < s.K; k++ {
		base := k * fstride
		var acc float32
		for m := 0; m < mc.M; m++ {
			fw := mc.bases[m].Words
			pop := f(rows, fw[base:base+fstride:base+fstride])
			acc += mc.alphas[m][k] * float32(n32-2*int32(pop))
		}
		dst[k] = acc
	}
}

// ApproxError reports the relative L2 error of the fitted weight
// approximation ‖W − Σ αB‖ / ‖W‖ — how much precision M bases recover.
func ApproxError(f *tensor.Filter, bases []*tensor.Filter, alphas [][]float32) float64 {
	perFilter := f.KH * f.KW * f.C
	var num, den float64
	for k := 0; k < f.K; k++ {
		off := k * perFilter
		for i := 0; i < perFilter; i++ {
			w := float64(f.Data[off+i])
			approx := 0.0
			for m := range bases {
				approx += float64(alphas[m][k]) * float64(bases[m].Data[off+i])
			}
			num += (w - approx) * (w - approx)
			den += w * w
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// ForwardFused computes the M-base approximation with a per-channel
// float threshold → binarize epilogue fused in, writing packed bits
// straight into out — the multi-base analogue of Conv.ForwardPacked. The
// float activation plane of Forward never materializes. thr holds the
// per-filter activation thresholds (bit = acc ≥ thr[k]); nil means 0
// (plain sign). out takes the conv's output geometry.
//
//bitflow:hot
func (mc *MultiBaseConv) ForwardFused(in *bitpack.Packed, thr []float32, out *bitpack.Packed, ec *exec.Ctx) {
	s := mc.Shape
	if in.H != s.InH || in.W != s.InW || in.C != s.InC || in.WPP != mc.Plan.Words {
		panic(fmt.Sprintf("core: multibase input %v, want %dx%dx%d wpp=%d", in, s.InH, s.InW, s.InC, mc.Plan.Words))
	}
	if in.MarginH < s.Pad || in.MarginW < s.Pad {
		panic("core: multibase input margins too small")
	}
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: multibase output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	if thr != nil && len(thr) != s.K {
		panic(fmt.Sprintf("core: multibase thresholds len %d, want K=%d", len(thr), s.K))
	}
	f := mc.rowsKernel
	n32 := int32(mc.validLanes)
	rowLen := mc.rowLen
	fstride := s.KH * rowLen
	bases := mc.bases
	alphas := mc.alphas
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		var inRows [16][]uint64 //bitflow:alloc-ok one scratch per worker chunk; rows leaks into the indirect kernel call
		rows := inRows[:s.KH]   //bitflow:bce-ok once per worker chunk; plan validation keeps KH <= 16
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			y0 := y*s.Stride - s.Pad
			x0 := x*s.Stride - s.Pad
			for i := range rows {
				off := in.PixelOffset(y0+i, x0)
				rows[i] = in.Words[off : off+rowLen : off+rowLen] //bitflow:bce-ok one slice per filter row; the pixel-offset arithmetic is opaque to the prover
			}
			// Word-major packing: the output cursor dw and the bit shift
			// advance together, so every per-filter access below is
			// compiler-proven in bounds (`bitflow-vet codegen`).
			dw := out.PixelWords(y, x) //bitflow:bce-ok inlined PixelWords slicing; once per output pixel, amortized over K filters of kernel calls
			var word uint64
			shift := uint(0)
			for k := 0; k < s.K; k++ {
				base := k * fstride
				var acc float32
				for m, bw := range bases {
					pop := f(rows, bw.Words[base:base+fstride:base+fstride]) //bitflow:bce-ok once per (filter, base), amortized over the fstride-word kernel call
					var a float32
					if m < len(alphas) {
						if ak := alphas[m]; k < len(ak) {
							a = ak[k]
						}
					}
					acc += a * float32(n32-2*int32(pop))
				}
				// k < len(thr) is the nil check too: nil thr has length 0
				// and every filter falls back to the plain sign threshold.
				var t float32
				if k < len(thr) {
					t = thr[k]
				}
				if acc >= t {
					word |= 1 << shift
				}
				if shift++; shift == bitpack.WordBits {
					if len(dw) > 0 {
						dw[0] = word
						dw = dw[1:]
					}
					word, shift = 0, 0
				}
			}
			if shift != 0 && len(dw) > 0 {
				dw[0] = word
				dw = dw[1:]
			}
			for len(dw) > 0 {
				dw[0] = 0
				dw = dw[1:]
			}
		}
	})
}
