package core

import (
	"math"
	"testing"
	"testing/quick"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// bnSignRef computes sign(γ(d−μ)/σ+β) in float64 — the reference the
// folded thresholds must match on integer pre-activations.
func bnSignRef(d int32, gamma, beta, mean, variance float32, eps float64) bool {
	sigma := math.Sqrt(float64(variance) + eps)
	return float64(gamma)*(float64(d)-float64(mean))/sigma+float64(beta) >= 0
}

// randBN draws batch-norm parameters avoiding the measure-zero exact
// decision boundary on integers.
func randBN(r *workload.RNG, k int) (gamma, beta, mean, variance []float32) {
	gamma = make([]float32, k)
	beta = make([]float32, k)
	mean = make([]float32, k)
	variance = make([]float32, k)
	for c := 0; c < k; c++ {
		g := 0.5 + r.Float32() // (0.5, 1.5)
		if r.Uint64()&1 == 0 {
			g = -g // exercise the flipped branch
		}
		gamma[c] = g
		beta[c] = 2*r.Float32() - 1
		mean[c] = 10 * (2*r.Float32() - 1)
		variance[c] = 0.5 + 2*r.Float32()
	}
	return
}

func TestFoldBatchNormMatchesFloatReference(t *testing.T) {
	r := workload.NewRNG(80)
	const eps = 1e-5
	for trial := 0; trial < 20; trial++ {
		k := r.Intn(8) + 1
		gamma, beta, mean, variance := randBN(r, k)
		th, err := FoldBatchNorm(gamma, beta, mean, variance, eps)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < k; c++ {
			for d := int32(-50); d <= 50; d++ {
				want := bnSignRef(d, gamma[c], beta[c], mean[c], variance[c], eps)
				if got := th.bit(c, d); got != want {
					t.Fatalf("trial %d c=%d d=%d: folded %v reference %v (γ=%v β=%v μ=%v var=%v)",
						trial, c, d, got, want, gamma[c], beta[c], mean[c], variance[c])
				}
			}
		}
	}
}

// TestFoldBatchNormQuick is the property form over random parameters and
// pre-activations.
func TestFoldBatchNormQuick(t *testing.T) {
	const eps = 1e-5
	f := func(seed uint64, dd int16) bool {
		r := workload.NewRNG(seed)
		gamma, beta, mean, variance := randBN(r, 1)
		th, err := FoldBatchNorm(gamma, beta, mean, variance, eps)
		if err != nil {
			return false
		}
		d := int32(dd)
		return th.bit(0, d) == bnSignRef(d, gamma[0], beta[0], mean[0], variance[0], eps)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldBatchNormZeroGamma(t *testing.T) {
	th, err := FoldBatchNorm([]float32{0, 0}, []float32{1, -1}, []float32{5, 5}, []float32{1, 1}, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	for d := int32(-100); d <= 100; d += 10 {
		if !th.bit(0, d) {
			t.Error("γ=0, β≥0 must be always-on")
		}
		if th.bit(1, d) {
			t.Error("γ=0, β<0 must be always-off")
		}
	}
}

func TestFoldBatchNormErrors(t *testing.T) {
	if _, err := FoldBatchNorm([]float32{1}, []float32{1, 2}, []float32{0}, []float32{1}, 1e-5); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := FoldBatchNorm([]float32{1}, []float32{0}, []float32{0}, []float32{-1}, 0); err == nil {
		t.Error("negative variance with eps 0: expected error")
	}
}

func TestFoldBias(t *testing.T) {
	th := FoldBias([]float32{0, 2.5, -3})
	// sign(d + b) ≥ 0 ⇔ d ≥ -b.
	cases := []struct {
		c    int
		d    int32
		want bool
	}{
		{0, 0, true}, {0, -1, false},
		{1, -2, true}, {1, -3, false}, // -b = -2.5 → d ≥ -2
		{2, 3, true}, {2, 2, false}, // -b = 3
	}
	for _, tc := range cases {
		if got := th.bit(tc.c, tc.d); got != tc.want {
			t.Errorf("c=%d d=%d: got %v want %v", tc.c, tc.d, got, tc.want)
		}
	}
}

func TestCompose(t *testing.T) {
	id := NewThresholds(3)
	next := FoldBias([]float32{1, 2, 3})
	got, err := id.Compose(next)
	if err != nil || got != next {
		t.Errorf("identity compose failed: %v", err)
	}
	if _, err := next.Compose(id); err == nil {
		t.Error("composing onto a non-identity activation must error")
	}
	var nilTh *Thresholds
	if got, err := nilTh.Compose(next); err != nil || got != next {
		t.Error("nil compose failed")
	}
}

func TestConvWithThresholdsMatchesFloatBN(t *testing.T) {
	r := workload.NewRNG(81)
	const eps = 1e-5
	cv, _, packed := buildConv(t, r, 6, 6, 128, 16, 3, 3, 1, 1)
	raw := tensor.New(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC)
	cv.Forward(packed, raw, exec.Serial())

	gamma, beta, mean, variance := randBN(r, 16)
	th, err := FoldBatchNorm(gamma, beta, mean, variance, eps)
	if err != nil {
		t.Fatal(err)
	}
	if err := cv.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	pOut := bitpack.NewPacked(cv.Shape.OutH, cv.Shape.OutW, 16, 1, 0, 0)
	cv.ForwardPacked(packed, pOut, exec.Threads(2))
	got := bitpack.Unpack(pOut)

	for h := 0; h < raw.H; h++ {
		for w := 0; w < raw.W; w++ {
			for c := 0; c < 16; c++ {
				want := float32(-1)
				if bnSignRef(int32(raw.At(h, w, c)), gamma[c], beta[c], mean[c], variance[c], eps) {
					want = 1
				}
				if got.At(h, w, c) != want {
					t.Fatalf("(%d,%d,%d): folded %v reference %v", h, w, c, got.At(h, w, c), want)
				}
			}
		}
	}

	// Restoring the plain sign recovers the original behaviour.
	if err := cv.SetThresholds(nil); err != nil {
		t.Fatal(err)
	}
	cv.ForwardPacked(packed, pOut, exec.Serial())
	if !bitpack.Unpack(pOut).Equal(raw.Sign()) {
		t.Error("SetThresholds(nil) did not restore the plain sign")
	}
}

func TestConvSetThresholdsValidates(t *testing.T) {
	r := workload.NewRNG(82)
	cv, _, _ := buildConv(t, r, 5, 5, 64, 4, 3, 3, 1, 1)
	if err := cv.SetThresholds(NewThresholds(5)); err == nil {
		t.Error("wrong channel count: expected error")
	}
}

func TestDenseWithThresholdsAndAffine(t *testing.T) {
	r := workload.NewRNG(83)
	const eps = 1e-5
	n, k := 128, 12
	shape, _ := sched.InferFC(n, k)
	plan := sched.Select(n, feat())
	w := workload.PM1Matrix(r, n, k)
	d, err := NewDense(shape, plan, w)
	if err != nil {
		t.Fatal(err)
	}
	inVals := make([]float32, n)
	for i := range inVals {
		inVals[i] = r.PM1()
	}
	in := d.NewInput()
	bitpack.PackVectorInto(in, inVals)
	raw := make([]int32, k)
	d.Forward(in, raw, exec.Serial())

	gamma, beta, mean, variance := randBN(r, k)

	// Packed path: folded thresholds.
	th, err := FoldBatchNorm(gamma, beta, mean, variance, eps)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetThresholds(th); err != nil {
		t.Fatal(err)
	}
	packedOut := make([]uint64, bitpack.WordsFor(k))
	d.ForwardPacked(in, packedOut, d.NewScratch(), exec.Serial())
	bits := bitpack.UnpackVector(packedOut, k)
	for c := 0; c < k; c++ {
		want := float32(-1)
		if bnSignRef(raw[c], gamma[c], beta[c], mean[c], variance[c], eps) {
			want = 1
		}
		if bits[c] != want {
			t.Fatalf("packed c=%d: got %v want %v", c, bits[c], want)
		}
	}

	// Float path: affine.
	aff, err := NewAffineFromBatchNorm(gamma, beta, mean, variance, eps)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetAffine(aff); err != nil {
		t.Fatal(err)
	}
	logits := make([]float32, k)
	d.ForwardFloat(in, logits, d.NewScratch(), exec.Serial())
	for c := 0; c < k; c++ {
		sigma := float32(math.Sqrt(float64(variance[c]) + eps))
		want := gamma[c]/sigma*(float32(raw[c])-mean[c]) + beta[c]
		if diff := math.Abs(float64(logits[c] - want)); diff > 1e-3 {
			t.Fatalf("affine c=%d: got %v want %v", c, logits[c], want)
		}
	}

	if err := d.SetAffine(&Affine{Scale: make([]float32, 3)}); err == nil {
		t.Error("wrong-size affine: expected error")
	}
	if err := d.SetThresholds(NewThresholds(3)); err == nil {
		t.Error("wrong-size thresholds: expected error")
	}
}

func TestNewAffineFromBias(t *testing.T) {
	a := NewAffineFromBias([]float32{1.5, -2})
	out := make([]float32, 2)
	a.Apply([]int32{10, 10}, out)
	if out[0] != 11.5 || out[1] != 8 {
		t.Errorf("affine bias apply = %v", out)
	}
}
