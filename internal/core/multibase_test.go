package core

import (
	"math"
	"testing"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func TestFitMultiBaseSingleBaseIsXNORScaling(t *testing.T) {
	// M = 1 is exactly XNOR-Net's α·sign(W): base = sign, α = mean|W|.
	r := workload.NewRNG(120)
	f := workload.RandFilter(r, 3, 3, 3, 8)
	bases, alphas, err := FitMultiBase(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) != 1 || len(alphas) != 1 {
		t.Fatal("wrong base count")
	}
	want := f.Sign()
	for i := range want.Data {
		if bases[0].Data[i] != want.Data[i] {
			t.Fatal("base 1 is not sign(W)")
		}
	}
	perFilter := 3 * 3 * 8
	for k := 0; k < 3; k++ {
		var sum float64
		for i := 0; i < perFilter; i++ {
			sum += math.Abs(float64(f.Data[k*perFilter+i]))
		}
		want := float32(sum / float64(perFilter))
		if diff := math.Abs(float64(alphas[0][k] - want)); diff > 1e-5 {
			t.Errorf("alpha[%d] = %v want %v", k, alphas[0][k], want)
		}
	}
}

func TestApproxErrorDecreasesWithBases(t *testing.T) {
	r := workload.NewRNG(121)
	f := workload.RandFilter(r, 4, 3, 3, 16)
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 3, 5, 8} {
		bases, alphas, err := FitMultiBase(f, m)
		if err != nil {
			t.Fatal(err)
		}
		e := ApproxError(f, bases, alphas)
		if e >= prev {
			t.Errorf("M=%d: error %.4f did not decrease (prev %.4f)", m, e, prev)
		}
		prev = e
	}
	if prev > 0.4 {
		t.Errorf("8-base residual error %.3f still large", prev)
	}
}

func TestMultiBaseConvEqualsExplicitCombination(t *testing.T) {
	// The operator must equal Σ αₘ·bconv(xᵇ, Bₘ) computed explicitly
	// with independent PressedConv operators.
	r := workload.NewRNG(122)
	shape, _ := sched.InferConv(6, 6, 64, 5, 3, 3, 1, 1)
	plan := sched.Select(64, feat())
	f := workload.RandFilter(r, 5, 3, 3, 64)
	const M = 3
	mc, err := NewMultiBaseConv(shape, plan, f, M)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.PM1Tensor(r, 6, 6, 64)
	packed := mc.NewInput()
	bitpack.PackTensorInto(in, packed)
	got := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	mc.Forward(packed, got, exec.Threads(2))

	bases, alphas, _ := FitMultiBase(f, M)
	want := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	for m := 0; m < M; m++ {
		cv, err := NewConv(shape, plan, bases[m])
		if err != nil {
			t.Fatal(err)
		}
		part := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		cv.Forward(packed, part, exec.Serial())
		for i := range want.Data {
			want.Data[i] += alphas[m][i%shape.OutC] * part.Data[i]
		}
	}
	if d := got.MaxAbsDiff(want); d > 1e-4 {
		t.Errorf("multibase != explicit combination (max diff %g)", d)
	}
}

func TestMultiBaseApproachesFloatConv(t *testing.T) {
	// With binary inputs, the M-base output must converge toward the
	// float convolution of the *float* weights as M grows.
	r := workload.NewRNG(123)
	shape, _ := sched.InferConv(6, 6, 64, 4, 3, 3, 1, 1)
	plan := sched.Select(64, feat())
	f := workload.RandFilter(r, 4, 3, 3, 64)
	in := workload.PM1Tensor(r, 6, 6, 64)
	target := baseline.ConvDirect(in, f, 1, 1, -1, 1)

	norm := 0.0
	for _, v := range target.Data {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)

	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 8} {
		mc, err := NewMultiBaseConv(shape, plan, f, m)
		if err != nil {
			t.Fatal(err)
		}
		packed := mc.NewInput()
		bitpack.PackTensorInto(in, packed)
		out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		mc.Forward(packed, out, exec.Serial())
		var errSq float64
		for i := range out.Data {
			d := float64(out.Data[i] - target.Data[i])
			errSq += d * d
		}
		rel := math.Sqrt(errSq) / norm
		if rel >= prev {
			t.Errorf("M=%d: relative error %.4f did not decrease (prev %.4f)", m, rel, prev)
		}
		prev = rel
	}
	if prev > 0.1 {
		t.Errorf("8-base conv still %.3f away from the float conv", prev)
	}
}

func TestMultiBaseErrors(t *testing.T) {
	r := workload.NewRNG(124)
	shape, _ := sched.InferConv(6, 6, 64, 4, 3, 3, 1, 1)
	plan := sched.Select(64, feat())
	if _, err := NewMultiBaseConv(shape, plan, workload.RandFilter(r, 4, 3, 3, 32), 2); err == nil {
		t.Error("mismatched filter: expected error")
	}
	if _, err := NewMultiBaseConv(shape, plan, workload.RandFilter(r, 4, 3, 3, 64), 0); err == nil {
		t.Error("zero bases: expected error")
	}
	if _, _, err := FitMultiBase(workload.RandFilter(r, 1, 1, 1, 4), -1); err == nil {
		t.Error("negative bases: expected error")
	}
}

func TestMultiBaseThreadsAgree(t *testing.T) {
	r := workload.NewRNG(125)
	shape, _ := sched.InferConv(8, 8, 128, 6, 3, 3, 1, 1)
	plan := sched.Select(128, feat())
	mc, err := NewMultiBaseConv(shape, plan, workload.RandFilter(r, 6, 3, 3, 128), 2)
	if err != nil {
		t.Fatal(err)
	}
	packed := mc.NewInput()
	bitpack.PackTensorInto(workload.PM1Tensor(r, 8, 8, 128), packed)
	serial := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	mc.Forward(packed, serial, exec.Serial())
	par := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	mc.Forward(packed, par, exec.Threads(7))
	if !serial.Equal(par) {
		t.Error("threaded multibase differs from serial")
	}
}
