package core

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// maxKH bounds the filter height so per-pixel row slices fit in a fixed
// stack array (no per-pixel allocation on the hot path).
const maxKH = 16

// Conv is a PressedConv binary convolution operator: filters are packed
// once at construction, inputs arrive as channel-packed bit tensors, and
// every multiply-accumulate is an XOR + popcount at the scheduled vector
// width.
type Conv struct {
	Shape sched.ConvShape
	Plan  sched.Plan

	filter *bitpack.PackedFilter
	// rowsKernel accumulates XOR+popcount over all KH row segments of
	// one filter in a single call.
	rowsKernel kernels.XorPopRowsFunc
	// validLanes is KH*KW*C, the true lane count N of Equation 1 for a
	// full filter application; channel-pad lanes are zero in both
	// operands and contribute nothing.
	validLanes int
	// rowLen is KW*WPP, the contiguous word count of one filter tap row
	// (and of the matching input row segment).
	rowLen int
	// act is the folded activation of the packed path; nil means the
	// plain Equation 3 sign.
	act *Thresholds
	// epi is act pre-compiled into the branchless fused epilogue the
	// packed paths run; rebuilt by SetThresholds, never per inference.
	epi *kernels.Epilogue
	// press is the kernel-compression plan compiled from the packed
	// filter bank at construction when its duplication ratio clears
	// kernels.CompressMinRatio (nil otherwise); pressStats always holds
	// the measured analysis. Pure runtime state, never serialized — the
	// graph layer decides per network which path actually runs.
	press      *kernels.CompressPlan
	pressStats kernels.CompressStats
}

// SetThresholds installs a folded activation (batch-norm or bias) for
// ForwardPacked. Pass nil to restore the plain sign.
func (cv *Conv) SetThresholds(th *Thresholds) error {
	if th != nil {
		if err := th.validate(cv.Shape.K); err != nil {
			return err
		}
	}
	cv.act = th
	cv.epi = th.Epilogue(cv.Shape.K)
	return nil
}

// NewConv builds a PressedConv operator. The filter bank's K/KH/KW/C must
// match shape; its weights are binarized (sign) and bit-packed here, once
// — the paper's network-level "binarization and bit-packing of weights
// during network initialization".
func NewConv(shape sched.ConvShape, plan sched.Plan, f *tensor.Filter) (*Conv, error) {
	if f.K != shape.K || f.KH != shape.KH || f.KW != shape.KW || f.C != shape.InC {
		return nil, fmt.Errorf("core: filter %v does not match conv shape %+v", f, shape)
	}
	if plan.C != shape.InC {
		return nil, fmt.Errorf("core: plan built for C=%d, conv has InC=%d", plan.C, shape.InC)
	}
	return NewConvPacked(shape, plan, bitpack.PackFilter(f, plan.Words))
}

// NewConvPacked builds a PressedConv operator from an already-packed
// filter bank (e.g. one deserialized from a model file). The packed
// filter's geometry and words-per-tap must match the shape and plan.
func NewConvPacked(shape sched.ConvShape, plan sched.Plan, pf *bitpack.PackedFilter) (*Conv, error) {
	if pf.K != shape.K || pf.KH != shape.KH || pf.KW != shape.KW || pf.C != shape.InC {
		return nil, fmt.Errorf("core: packed filter %v does not match conv shape %+v", pf, shape)
	}
	if plan.C != shape.InC {
		return nil, fmt.Errorf("core: plan built for C=%d, conv has InC=%d", plan.C, shape.InC)
	}
	if pf.WPP != plan.Words {
		return nil, fmt.Errorf("core: packed filter wpp=%d, plan wants %d", pf.WPP, plan.Words)
	}
	if shape.KH > maxKH {
		return nil, fmt.Errorf("core: filter height %d exceeds supported maximum %d", shape.KH, maxKH)
	}
	if !plan.Width.Divides(shape.KW * plan.Words) {
		// Cannot happen with plans from sched.Select (width divides
		// Words), but guard against hand-built plans.
		return nil, fmt.Errorf("core: width %s does not divide row length %d", plan.Width, shape.KW*plan.Words)
	}
	cv := &Conv{
		Shape:      shape,
		Plan:       plan,
		filter:     pf,
		rowsKernel: kernels.RowsForWidth(plan.Width),
		validLanes: shape.KH * shape.KW * shape.InC,
		rowLen:     shape.KW * plan.Words,
		epi:        kernels.NewSignEpilogue(shape.K),
	}
	fstride := shape.KH * cv.rowLen
	cv.pressStats = kernels.AnalyzeCompression(pf.Words, shape.K, fstride)
	if cv.pressStats.Selectable() {
		cv.press = kernels.BuildCompressPlan(pf.Words, shape.K, fstride)
	}
	return cv, nil
}

// Filter exposes the packed filter bank (read-only use).
func (cv *Conv) Filter() *bitpack.PackedFilter { return cv.filter }

// Activation returns the folded activation, or nil for the plain sign.
func (cv *Conv) Activation() *Thresholds { return cv.act }

// NewInput allocates a packed input buffer with the margins this operator
// needs for zero-cost padding: interior InH×InW×InC, margins = Pad.
func (cv *Conv) NewInput() *bitpack.Packed {
	return bitpack.NewPacked(cv.Shape.InH, cv.Shape.InW, cv.Shape.InC, cv.Plan.Words, cv.Shape.Pad, cv.Shape.Pad)
}

// checkInput validates that in is a legal input buffer for this operator.
func (cv *Conv) checkInput(in *bitpack.Packed) {
	s := cv.Shape
	if in.H != s.InH || in.W != s.InW || in.C != s.InC {
		panic(fmt.Sprintf("core: conv input %v, want %dx%dx%d", in, s.InH, s.InW, s.InC))
	}
	if in.WPP != cv.Plan.Words {
		panic(fmt.Sprintf("core: conv input wpp=%d, plan wants %d", in.WPP, cv.Plan.Words))
	}
	if in.MarginH < s.Pad || in.MarginW < s.Pad {
		panic(fmt.Sprintf("core: conv input margins %dx%d < pad %d", in.MarginH, in.MarginW, s.Pad))
	}
}

// Forward computes raw pre-activation outputs into out (OutH×OutW×K).
// Outputs are exact integer inner products stored as float32. ec
// controls the multi-core split over the fused OutH·OutW dimension.
func (cv *Conv) Forward(in *bitpack.Packed, out *tensor.Tensor, ec *exec.Ctx) {
	cv.checkInput(in)
	s := cv.Shape
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: conv output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			cv.pixelInto(in, y, x, out.Pixel(y, x))
		}
	})
}

// ForwardPacked computes outputs with the sign activation fused and
// bit-packed directly into out's interior (zero-cost padding for the next
// layer: out's margins stay untouched). out must be OutH×OutW with C = K.
func (cv *Conv) ForwardPacked(in *bitpack.Packed, out *bitpack.Packed, ec *exec.Ctx) {
	cv.checkInput(in)
	s := cv.Shape
	if out.H != s.OutH || out.W != s.OutW || out.C != s.OutC {
		panic(fmt.Sprintf("core: conv packed output %v, want %dx%dx%d", out, s.OutH, s.OutW, s.OutC))
	}
	total := s.OutH * s.OutW
	ec.ParallelFor(total, func(start, end int) {
		// One row-pointer scratch per worker chunk: the rows slice leaks
		// into the indirect kernel call, so a per-pixel array would be a
		// per-pixel heap allocation (`bitflow-vet codegen` enforces this).
		var inRows [16][]uint64 //bitflow:alloc-ok one scratch per worker chunk, amortized across the chunk's pixels
		rows := inRows[:s.KH]
		for idx := start; idx < end; idx++ {
			y := idx / s.OutW
			x := idx % s.OutW
			cv.pixelPackedInto(in, rows, y, x, out.PixelWords(y, x))
		}
	})
}

// pixelInto computes the K inner products of output pixel (y, x) into dst.
func (cv *Conv) pixelInto(in *bitpack.Packed, y, x int, dst []float32) {
	s := cv.Shape
	f := cv.rowsKernel
	n32 := int32(cv.validLanes)
	rowLen := cv.rowLen
	y0 := y*s.Stride - s.Pad
	x0 := x*s.Stride - s.Pad
	// Hoist the KH input row segments: each is a contiguous run of
	// KW*WPP words (pixels along a row are adjacent in memory — the
	// locality-aware layout at work).
	var inRows [16][]uint64
	rows := inRows[:s.KH]
	for i := 0; i < s.KH; i++ {
		off := in.PixelOffset(y0+i, x0)
		rows[i] = in.Words[off : off+rowLen : off+rowLen]
	}
	fw := cv.filter.Words
	fstride := s.KH * rowLen // words per filter
	for k := 0; k < s.K; k++ {
		base := k * fstride
		acc := f(rows, fw[base:base+fstride:base+fstride])
		dst[k] = float32(n32 - 2*int32(acc))
	}
}

// pixelPackedInto computes the K inner products of output pixel (y, x)
// and writes threshold bits into the WPP words at dst via the fused
// epilogue. Bits beyond K stay 0.
// rows is caller-provided KH-length scratch (hoisted so the backing
// array is allocated once per worker chunk, not per pixel).
func (cv *Conv) pixelPackedInto(in *bitpack.Packed, rows [][]uint64, y, x int, dst []uint64) {
	s := cv.Shape
	rowLen := cv.rowLen
	y0 := y*s.Stride - s.Pad
	x0 := x*s.Stride - s.Pad
	for i := 0; i < s.KH && i < len(rows); i++ {
		off := in.PixelOffset(y0+i, x0)
		rows[i] = in.Words[off : off+rowLen : off+rowLen]
	}
	kernels.ConvEpilogue(cv.rowsKernel, rows, cv.filter.Words, s.KH*rowLen,
		int32(cv.validLanes), cv.epi, dst)
}

// CanFusePool reports whether a max-pool with shape ps can fuse into this
// conv's epilogue: ps must consume exactly this conv's output geometry
// with non-overlapping windows (stride ≥ window in both dimensions), so
// every conv pixel belongs to at most one window and the fused sweep
// computes it exactly once. Max-pool commutes with sign — the max of ±1
// values has the sign bit OR — so ORing the per-position threshold bits
// is bit-exact against conv-then-pool.
func (cv *Conv) CanFusePool(ps sched.PoolShape) bool {
	s := cv.Shape
	return ps.InH == s.OutH && ps.InW == s.OutW && ps.InC == s.OutC &&
		ps.Stride >= ps.KH && ps.Stride >= ps.KW
}

// ForwardFused is the fused conv → threshold → binarize → max-pool
// forward: for each pool output pixel it runs the conv epilogue over the
// window's positions, the first overwriting, the rest ORing threshold
// bits in — with a filter's XOR+popcount skipped outright once its bit
// saturates (OR is monotone). The conv's intermediate plane never
// materializes. pl must satisfy CanFusePool; out takes the pool's output
// geometry. A nil pl degenerates to ForwardPacked.
func (cv *Conv) ForwardFused(in *bitpack.Packed, pl *Pool, out *bitpack.Packed, ec *exec.Ctx) {
	if pl == nil {
		cv.ForwardPacked(in, out, ec)
		return
	}
	cv.checkInput(in)
	if !cv.CanFusePool(pl.Shape) {
		panic(fmt.Sprintf("core: pool %+v cannot fuse into conv %+v", pl.Shape, cv.Shape))
	}
	p := pl.Shape
	if out.H != p.OutH || out.W != p.OutW || out.C != p.OutC {
		panic(fmt.Sprintf("core: fused output %v, want %dx%dx%d", out, p.OutH, p.OutW, p.OutC))
	}
	s := cv.Shape
	rowLen := cv.rowLen
	fstride := s.KH * rowLen
	n32 := int32(cv.validLanes)
	fw := cv.filter.Words
	epi := cv.epi
	f := cv.rowsKernel
	total := p.OutH * p.OutW
	ec.ParallelFor(total, func(start, end int) {
		var inRows [16][]uint64 //bitflow:alloc-ok one scratch per worker chunk; rows leaks into the indirect kernel call
		rows := inRows[:s.KH]
		for idx := start; idx < end; idx++ {
			py := idx / p.OutW
			px := idx % p.OutW
			dst := out.PixelWords(py, px)
			for i := 0; i < p.KH; i++ {
				cy := py*p.Stride + i
				for j := 0; j < p.KW; j++ {
					cx := px*p.Stride + j
					y0 := cy*s.Stride - s.Pad
					x0 := cx*s.Stride - s.Pad
					for r := 0; r < s.KH; r++ {
						off := in.PixelOffset(y0+r, x0)
						rows[r] = in.Words[off : off+rowLen : off+rowLen]
					}
					if i == 0 && j == 0 {
						kernels.ConvEpilogue(f, rows, fw, fstride, n32, epi, dst)
					} else {
						kernels.ConvEpilogueOr(f, rows, fw, fstride, n32, epi, dst)
					}
				}
			}
		}
	})
}
