package core

import (
	"testing"

	"bitflow/internal/bitpack"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

// randThresholds builds a folded activation exercising both comparison
// directions and the extreme encodings (γ=0 constants, MaxInt32 overflow
// probe for the flipped T+1 adjustment).
func randThresholds(r *workload.RNG, k, span int) *Thresholds {
	th := NewThresholds(k)
	for c := 0; c < k; c++ {
		switch r.Intn(8) {
		case 0:
			th.T[c] = 1<<31 - 1 // MaxInt32
		case 1:
			th.T[c] = -1 << 31 // MinInt32
		default:
			th.T[c] = int32(r.Intn(2*span+1) - span)
		}
		th.Flip[c] = r.Intn(2) == 0
	}
	return th
}

// fusedCase wires a conv (+thresholds) and an eligible pool.
type fusedCase struct {
	cv   *Conv
	pl   *Pool
	in   *bitpack.Packed
	conv *bitpack.Packed // unfused conv output
	want *bitpack.Packed // unfused pool output
	got  *bitpack.Packed // fused output
}

func buildFused(t *testing.T, r *workload.RNG, h, w, c, k, kh, kw, stride, pad, pkh, pkw, pstride int, withTh bool) fusedCase {
	t.Helper()
	cv, _, packed := buildConv(t, r, h, w, c, k, kh, kw, stride, pad)
	if withTh {
		if err := cv.SetThresholds(randThresholds(r, k, cv.validLanes)); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := sched.InferPool(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC, pkh, pkw, pstride)
	if err != nil {
		t.Fatal(err)
	}
	wpp := sched.Select(k, feat()).Words
	pl, err := NewPool(ps, wpp)
	if err != nil {
		t.Fatal(err)
	}
	return fusedCase{
		cv: cv, pl: pl, in: packed,
		conv: bitpack.NewPacked(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC, wpp, 0, 0),
		want: bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 1, 1),
		got:  bitpack.NewPacked(ps.OutH, ps.OutW, ps.OutC, wpp, 1, 1),
	}
}

func (fc *fusedCase) check(t *testing.T, label string, ec *exec.Ctx) {
	t.Helper()
	fc.cv.ForwardPacked(fc.in, fc.conv, ec)
	fc.pl.Forward(fc.conv, fc.want, ec)
	// Poison the fused destination: stale interior bits must be
	// overwritten, margins must stay untouched.
	for i := range fc.got.Words {
		fc.got.Words[i] = ^uint64(0)
	}
	for y := 0; y < fc.got.H; y++ {
		for x := 0; x < fc.got.W; x++ {
			clear(fc.got.PixelWords(y, x))
		}
	}
	fc.cv.ForwardFused(fc.in, fc.pl, fc.got, ec)
	for y := 0; y < fc.want.H; y++ {
		for x := 0; x < fc.want.W; x++ {
			ww := fc.want.PixelWords(y, x)
			gw := fc.got.PixelWords(y, x)
			for i := range ww {
				if ww[i] != gw[i] {
					t.Fatalf("%s: fused pixel (%d,%d) word %d = %016x, want %016x",
						label, y, x, i, gw[i], ww[i])
				}
			}
		}
	}
}

func TestConvForwardFusedMatchesUnfused(t *testing.T) {
	r := workload.NewRNG(90)
	cases := []struct {
		name                                          string
		h, w, c, k, kh, kw, stride, pad, pkh, pkw, ps int
	}{
		{"vgg2x2", 8, 8, 64, 70, 3, 3, 1, 1, 2, 2, 2},
		{"3x3pool", 9, 9, 128, 64, 3, 3, 1, 1, 3, 3, 3},
		{"ragged", 9, 7, 100, 33, 3, 3, 1, 1, 2, 2, 2}, // dropped conv pixels + partial words
		{"stride>win", 10, 10, 64, 16, 3, 3, 1, 1, 2, 2, 3},
		{"1x1conv", 8, 8, 256, 128, 1, 1, 1, 0, 2, 2, 2},
		{"wideK", 6, 6, 64, 200, 3, 3, 1, 1, 2, 2, 2},
		{"convstride2", 16, 16, 64, 32, 3, 3, 2, 1, 2, 2, 2},
	}
	for _, tc := range cases {
		for _, withTh := range []bool{false, true} {
			fc := buildFused(t, r, tc.h, tc.w, tc.c, tc.k, tc.kh, tc.kw, tc.stride, tc.pad, tc.pkh, tc.pkw, tc.ps, withTh)
			fc.check(t, tc.name, exec.Serial())
		}
	}
}

func TestConvForwardFusedThreadsAgree(t *testing.T) {
	r := workload.NewRNG(91)
	fc := buildFused(t, r, 12, 12, 128, 96, 3, 3, 1, 1, 2, 2, 2, true)
	fc.check(t, "serial", exec.Serial())
	serial := append([]uint64(nil), fc.got.Words...)
	for _, threads := range []int{2, 4, 16} {
		fc.check(t, "threads", exec.Threads(threads))
		for i, v := range fc.got.Words {
			if v != serial[i] {
				t.Fatalf("threads=%d: word %d differs from serial", threads, i)
			}
		}
	}
}

func TestConvForwardFusedNilPoolIsForwardPacked(t *testing.T) {
	r := workload.NewRNG(92)
	cv, _, packed := buildConv(t, r, 6, 6, 64, 40, 3, 3, 1, 1)
	wpp := sched.Select(40, feat()).Words
	a := bitpack.NewPacked(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC, wpp, 0, 0)
	b := bitpack.NewPacked(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC, wpp, 0, 0)
	cv.ForwardPacked(packed, a, exec.Serial())
	cv.ForwardFused(packed, nil, b, exec.Serial())
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("nil-pool fused differs from ForwardPacked at word %d", i)
		}
	}
}

func TestCanFusePool(t *testing.T) {
	r := workload.NewRNG(93)
	cv, _, _ := buildConv(t, r, 8, 8, 64, 16, 3, 3, 1, 1) // out 8x8x16
	ok := func(kh, kw, stride int) bool {
		ps, err := sched.InferPool(cv.Shape.OutH, cv.Shape.OutW, cv.Shape.OutC, kh, kw, stride)
		if err != nil {
			t.Fatal(err)
		}
		return cv.CanFusePool(ps)
	}
	if !ok(2, 2, 2) || !ok(3, 3, 3) || !ok(2, 2, 3) || !ok(1, 1, 1) {
		t.Error("non-overlapping pools should fuse")
	}
	if ok(2, 2, 1) || ok(3, 3, 2) {
		t.Error("overlapping pools must not fuse")
	}
	// Geometry mismatch: pool sized for a different input plane.
	ps, err := sched.InferPool(4, 4, 16, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cv.CanFusePool(ps) {
		t.Error("pool over mismatched geometry must not fuse")
	}
}

func TestConvForwardFusedBatchBitIdentical(t *testing.T) {
	r := workload.NewRNG(94)
	fc := buildFused(t, r, 9, 7, 100, 70, 3, 3, 1, 1, 2, 2, 2, true)
	cv, pl := fc.cv, fc.pl
	wpp := fc.got.WPP
	for _, B := range []int{1, 2, 3, 5} {
		ins := make([]*bitpack.Packed, B)
		outs := make([]*bitpack.Packed, B)
		wants := make([]*bitpack.Packed, B)
		for b := 0; b < B; b++ {
			in := workload.PM1Tensor(r, 9, 7, 100)
			ins[b] = cv.NewInput()
			bitpack.PackTensorInto(in, ins[b])
			outs[b] = bitpack.NewPacked(pl.Shape.OutH, pl.Shape.OutW, pl.Shape.OutC, wpp, 0, 0)
			wants[b] = bitpack.NewPacked(pl.Shape.OutH, pl.Shape.OutW, pl.Shape.OutC, wpp, 0, 0)
			cv.ForwardFused(ins[b], pl, wants[b], exec.Serial())
		}
		cv.ForwardFusedBatch(ins, pl, outs, exec.Threads(2))
		for b := 0; b < B; b++ {
			for i := range wants[b].Words {
				if outs[b].Words[i] != wants[b].Words[i] {
					t.Fatalf("B=%d lane %d word %d: batched fused differs from serial fused", B, b, i)
				}
			}
		}
	}
}

func TestMultiBaseForwardFusedMatchesForward(t *testing.T) {
	r := workload.NewRNG(95)
	h, w, c, k := 7, 7, 64, 70
	shape, err := sched.InferConv(h, w, c, k, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Select(c, feat())
	f := workload.RandFilter(r, k, 3, 3, c)
	mc, err := NewMultiBaseConv(shape, plan, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.PM1Tensor(r, h, w, c)
	packed := mc.NewInput()
	bitpack.PackTensorInto(in, packed)

	ref := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	mc.Forward(packed, ref, exec.Serial())
	thr := make([]float32, k)
	for i := range thr {
		thr[i] = float32(r.Intn(11) - 5)
	}
	for _, th := range [][]float32{nil, thr} {
		out := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, bitpack.WordsFor(k), 0, 0)
		mc.ForwardFused(packed, th, out, exec.Threads(2))
		for y := 0; y < shape.OutH; y++ {
			for x := 0; x < shape.OutW; x++ {
				words := out.PixelWords(y, x)
				px := ref.Pixel(y, x)
				for kk := 0; kk < k; kk++ {
					var tv float32
					if th != nil {
						tv = th[kk]
					}
					want := px[kk] >= tv
					got := words[kk/bitpack.WordBits]>>uint(kk%bitpack.WordBits)&1 == 1
					if got != want {
						t.Fatalf("multibase fused (%d,%d) k=%d: got %v, want %v (acc=%g thr=%g)",
							y, x, kk, got, want, px[kk], tv)
					}
				}
			}
		}
	}
}

func TestMultiBitForwardFusedMatchesForward(t *testing.T) {
	r := workload.NewRNG(96)
	h, w, c, k := 6, 6, 64, 66
	shape, err := sched.InferConv(h, w, c, k, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := sched.Select(c, feat())
	f := workload.PM1Filter(r, k, 3, 3, c)
	mb, err := NewMultiBitConv(shape, plan, f, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := workload.RandTensor(r, h, w, c)
	planes := mb.NewPlanes()
	mb.PackPlanes(in, planes)

	ref := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	mb.Forward(planes, ref, exec.Serial())
	thr := make([]float32, k)
	for i := range thr {
		thr[i] = float32(r.Intn(7)-3) / 2
	}
	for _, th := range [][]float32{nil, thr} {
		out := bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, bitpack.WordsFor(k), 0, 0)
		mb.ForwardFused(planes, th, out, exec.Threads(2))
		for y := 0; y < shape.OutH; y++ {
			for x := 0; x < shape.OutW; x++ {
				words := out.PixelWords(y, x)
				px := ref.Pixel(y, x)
				for kk := 0; kk < k; kk++ {
					var tv float32
					if th != nil {
						tv = th[kk]
					}
					want := px[kk] >= tv
					got := words[kk/bitpack.WordBits]>>uint(kk%bitpack.WordBits)&1 == 1
					if got != want {
						t.Fatalf("multibit fused (%d,%d) k=%d: got %v, want %v (acc=%g thr=%g)",
							y, x, kk, got, want, px[kk], tv)
					}
				}
			}
		}
	}
}
