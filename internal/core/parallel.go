package core

// Multi-core dispatch for the paper's "fused H and W dimension" split
// lives in internal/exec: operators hand the flattened output-pixel index
// space to (*exec.Ctx).ParallelFor, which runs it on a persistent worker
// pool (or inline for serial/nil contexts) with chunk panics re-raised on
// the caller's goroutine. The old per-call parallelFor — fresh goroutines
// on every layer of every request, panics escaping on unjoined
// goroutines — is gone; see internal/exec's package comment for why.
