package core

// parallelFor splits [0, total) into at most `threads` contiguous chunks
// and runs body on each chunk concurrently, blocking until all complete.
// threads <= 1 (or a trivially small range) runs inline. This is the
// multi-core engine for the paper's "fused H and W dimension" split: the
// caller hands the flattened output-pixel index space to body.
func parallelFor(total, threads int, body func(start, end int)) {
	if threads <= 1 || total <= 1 {
		body(0, total)
		return
	}
	if threads > total {
		threads = total
	}
	chunk := (total + threads - 1) / threads
	done := make(chan struct{}, threads)
	n := 0
	for start := 0; start < total; start += chunk {
		end := min(start+chunk, total)
		n++
		go func(s, e int) {
			body(s, e)
			done <- struct{}{}
		}(start, end)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
