package baseline

import (
	"fmt"

	"bitflow/internal/bitpack"
	"bitflow/internal/kernels"
	"bitflow/internal/tensor"
)

// BinaryIm2colConv is the paper's *unoptimized BNN* baseline (Fig. 7):
// binary convolution through the conventional image-to-column method.
// The input is unfolded at run time, each unfolded row is binarized and
// bit-packed along the unfolded (KH*KW*C) dimension, and the product is a
// binary gemm run with the scalar single-word kernel — no vector
// parallelism. It inherits both §III-A limits: the unfold's extra memory
// traffic, and an unfolded length that is generally not a multiple of the
// wider vector tiers.
type BinaryIm2colConv struct {
	KH, KW, Stride, Pad int
	K, C                int

	cols    int                   // KH*KW*C, the unfolded row length in lanes
	wpr     int                   // words per unfolded row
	weights *bitpack.PackedMatrix // K rows × wpr

	// Kernel is the XOR+popcount kernel; the authentic baseline is the
	// scalar XorPop64. Ablations may install a wider kernel to measure
	// "im2col but vectorized" separately from the layout change.
	Kernel kernels.XorPopFunc
}

// NewBinaryIm2colConv packs the (sign-binarized) filter bank along the
// unfolded dimension and returns the baseline operator.
func NewBinaryIm2colConv(f *tensor.Filter, stride, pad int) *BinaryIm2colConv {
	cols := f.KH * f.KW * f.C
	wpr := bitpack.WordsFor(cols)
	w := FilterMatrix(f) // K × cols; rows are already the unfolded order
	pm := bitpack.NewPackedMatrix(f.K, cols, wpr)
	for k := 0; k < f.K; k++ {
		bitpack.PackVectorInto(pm.RowWords(k), w.Row(k))
	}
	return &BinaryIm2colConv{
		KH: f.KH, KW: f.KW, Stride: stride, Pad: pad,
		K: f.K, C: f.C,
		cols: cols, wpr: wpr, weights: pm,
		Kernel: kernels.XorPop64,
	}
}

// Words reports the packed unfolded row length in 64-bit words; the
// harness prints it to show why the wide tiers rarely apply (paper:
// "N won't be multiple of 32 in most cases").
func (b *BinaryIm2colConv) Words() int { return b.wpr }

// Forward runs the baseline convolution on a ±1-valued input tensor and
// returns raw integer inner products as float32 (NHWC). Binarized zero
// padding pads the bit 0 (= feature −1). threads splits the unfolded
// rows, matching how a gemm-backed conv parallelizes.
func (b *BinaryIm2colConv) Forward(in *tensor.Tensor, threads int) *tensor.Tensor {
	if in.C != b.C {
		panic(fmt.Sprintf("baseline: BinaryIm2colConv input C=%d, want %d", in.C, b.C))
	}
	outH := (in.H+2*b.Pad-b.KH)/b.Stride + 1
	outW := (in.W+2*b.Pad-b.KW)/b.Stride + 1
	// Step 1: unfold (run-time cost, charged to the baseline).
	u := Im2col(in, b.KH, b.KW, b.Stride, b.Pad, -1)
	out := tensor.New(outH, outW, b.K)
	rows := u.Rows
	runChunks(rows, threads, func(r0, r1 int) {
		packed := make([]uint64, b.wpr)
		for r := r0; r < r1; r++ {
			// Step 2: binarize + pack the unfolded row at run time —
			// the baseline cannot pre-pack activations.
			bitpack.PackVectorInto(packed, u.Row(r))
			dst := out.Data[r*b.K : (r+1)*b.K]
			// Step 3: binary gemm row × weightsᵀ with the configured
			// (scalar, for the authentic baseline) kernel.
			for k := 0; k < b.K; k++ {
				acc := b.Kernel(packed, b.weights.RowWords(k))
				dst[k] = float32(int32(b.cols) - 2*int32(acc))
			}
		}
	})
	return out
}
