package baseline

import (
	"fmt"

	"bitflow/internal/tensor"
)

// Im2col unfolds in for a KH×KW/stride/pad convolution (paper §II-B,
// Fig. 2b): each output position becomes one row of (KH*KW*C) values,
// ordered (i, j, c) to match tensor.Filter's tap layout, so the weight
// matrix row for filter k is simply filter k flattened. Positions that
// fall in the padding ring take the value padVal (0 for float networks,
// −1 for binarized ones — bit-level zero padding pads the bit 0, which
// decodes to feature −1).
//
// The unfolded matrix is larger than the input by roughly a factor of
// KH*KW — the memory blow-up behind the AIT argument of paper §III-A.
func Im2col(in *tensor.Tensor, kh, kw, stride, pad int, padVal float32) *tensor.Matrix {
	outH := (in.H+2*pad-kh)/stride + 1
	outW := (in.W+2*pad-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("baseline: Im2col window %dx%d does not fit %v (pad %d)", kh, kw, in, pad))
	}
	cols := kh * kw * in.C
	u := tensor.NewMatrix(outH*outW, cols)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			row := u.Row(y*outW + x)
			y0 := y*stride - pad
			x0 := x*stride - pad
			pos := 0
			for i := 0; i < kh; i++ {
				sy := y0 + i
				for j := 0; j < kw; j++ {
					sx := x0 + j
					dst := row[pos : pos+in.C]
					if sy < 0 || sy >= in.H || sx < 0 || sx >= in.W {
						for c := range dst {
							dst[c] = padVal
						}
					} else {
						copy(dst, in.Pixel(sy, sx))
					}
					pos += in.C
				}
			}
		}
	}
	return u
}

// FilterMatrix flattens a filter bank into the K×(KH*KW*C) weight matrix
// of the image-to-column method (Fig. 2c); row k is filter k in (i, j, c)
// order. The returned matrix shares no storage with f.
func FilterMatrix(f *tensor.Filter) *tensor.Matrix {
	cols := f.KH * f.KW * f.C
	w := tensor.NewMatrix(f.K, cols)
	for k := 0; k < f.K; k++ {
		copy(w.Row(k), f.Data[k*cols:(k+1)*cols])
	}
	return w
}
