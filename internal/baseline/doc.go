// Package baseline implements the comparators BitFlow is evaluated
// against in the paper:
//
//   - counterpart full-precision (float32) operators on CPU: direct and
//     image-to-column convolution, dense, max-pool — the 1× reference of
//     Figs. 7–9;
//   - the *unoptimized BNN* implementation: conventional image-to-column
//     binary convolution, bit-packed along the unfolded dimension and
//     executed with the scalar single-word kernel only (no vector
//     parallelism), exactly the baseline of Fig. 7;
//   - a blocked float sgemm used by the image-to-column float path.
//
// These are real, tested implementations (not stubs): every speedup the
// benchmark harness reports is measured against them.
package baseline
