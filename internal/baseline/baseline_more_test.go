package baseline

import (
	"testing"

	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func TestIm2colStrided(t *testing.T) {
	// 4×4 input, 2×2 kernel, stride 2: four non-overlapping windows.
	in := tensor.FromSlice(4, 4, 1, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	u := Im2col(in, 2, 2, 2, 0, 0)
	if u.Rows != 4 || u.Cols != 4 {
		t.Fatalf("shape %v", u)
	}
	want := [][]float32{
		{1, 2, 5, 6},
		{3, 4, 7, 8},
		{9, 10, 13, 14},
		{11, 12, 15, 16},
	}
	for r, row := range want {
		for c, v := range row {
			if u.At(r, c) != v {
				t.Errorf("u[%d][%d] = %v want %v", r, c, u.At(r, c), v)
			}
		}
	}
}

func TestConvIm2colNegativePad(t *testing.T) {
	// The binarized pad convention (−1) must agree between the direct
	// and the im2col float paths.
	r := workload.NewRNG(180)
	in := workload.PM1Tensor(r, 5, 5, 4)
	f := workload.PM1Filter(r, 3, 3, 3, 4)
	direct := ConvDirect(in, f, 1, 1, -1, 1)
	viaIm2col := ConvIm2col(in, f, 1, 1, -1, 1)
	if !direct.Equal(viaIm2col) {
		t.Errorf("pad -1: direct vs im2col max diff %g", direct.MaxAbsDiff(viaIm2col))
	}
}

func TestBinaryIm2colStride2(t *testing.T) {
	r := workload.NewRNG(181)
	in := workload.PM1Tensor(r, 8, 8, 64)
	f := workload.PM1Filter(r, 4, 2, 2, 64)
	bc := NewBinaryIm2colConv(f, 2, 0)
	got := bc.Forward(in, 1)
	want := ConvDirect(in, f, 2, 0, -1, 1)
	if !got.Equal(want) {
		t.Error("strided binary im2col differs from direct")
	}
}

func TestSgemmIntoAccumulates(t *testing.T) {
	a := tensor.MatrixFromSlice(1, 2, []float32{1, 2})
	b := tensor.MatrixFromSlice(2, 1, []float32{3, 4})
	c := tensor.NewMatrix(1, 1)
	c.Set(0, 0, 100)
	SgemmInto(a, b, c)
	// SgemmInto accumulates: 100 + 1·3 + 2·4 = 111.
	if c.At(0, 0) != 111 {
		t.Errorf("accumulation got %v want 111", c.At(0, 0))
	}
}

func TestDenseFloatPanics(t *testing.T) {
	w := tensor.NewMatrix(3, 2)
	for name, fn := range map[string]func(){
		"bad input":  func() { DenseFloat(make([]float32, 4), w, make([]float32, 2), 1) },
		"bad output": func() { DenseFloat(make([]float32, 3), w, make([]float32, 5), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMaxPoolFloatPanicsOnOversizedWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MaxPoolFloat(tensor.New(2, 2, 1), 3, 3, 3, 1)
}
