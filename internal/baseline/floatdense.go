package baseline

import (
	"fmt"

	"bitflow/internal/tensor"
)

// DenseFloat computes out = in × W for a 1×N activation row and an N×K
// weight matrix — the counterpart full-precision fully connected
// operator. The loop order streams rows of W (unit stride) and skips
// zero activations; threads split the N dimension is not profitable for
// M = 1, so the split is over K via column blocks.
func DenseFloat(in []float32, w *tensor.Matrix, out []float32, threads int) {
	if len(in) != w.Rows {
		panic(fmt.Sprintf("baseline: DenseFloat input len %d, want %d", len(in), w.Rows))
	}
	if len(out) != w.Cols {
		panic(fmt.Sprintf("baseline: DenseFloat output len %d, want %d", len(out), w.Cols))
	}
	k := w.Cols
	runChunks(k, threads, func(k0, k1 int) {
		seg := out[k0:k1]
		clear(seg)
		for n, av := range in {
			if av == 0 {
				continue
			}
			axpy(seg, w.Data[n*k+k0:n*k+k1], av)
		}
	})
}

// MaxPoolFloat computes a full-precision KH×KW/stride max pool in NHWC.
func MaxPoolFloat(in *tensor.Tensor, kh, kw, stride, threads int) *tensor.Tensor {
	outH := (in.H-kh)/stride + 1
	outW := (in.W-kw)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("baseline: MaxPoolFloat window %dx%d does not fit %v", kh, kw, in))
	}
	out := tensor.New(outH, outW, in.C)
	total := outH * outW
	runChunks(total, threads, func(start, end int) {
		for idx := start; idx < end; idx++ {
			y := idx / outW
			x := idx % outW
			dst := out.Pixel(y, x)
			copy(dst, in.Pixel(y*stride, x*stride))
			for i := 0; i < kh; i++ {
				for j := 0; j < kw; j++ {
					if i == 0 && j == 0 {
						continue
					}
					px := in.Pixel(y*stride+i, x*stride+j)
					for c, v := range px {
						if v > dst[c] {
							dst[c] = v
						}
					}
				}
			}
		}
	})
	return out
}
