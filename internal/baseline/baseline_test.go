package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"bitflow/internal/kernels"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func matMaxAbsDiff(a, b *tensor.Matrix) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestSgemmMatchesNaive(t *testing.T) {
	r := workload.NewRNG(60)
	for _, tc := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {65, 70, 33}, {64, 256, 64}, {100, 300, 17},
	} {
		a := workload.RandMatrix(r, tc.m, tc.k)
		b := workload.RandMatrix(r, tc.k, tc.n)
		got := Sgemm(a, b)
		want := tensor.MatMul(a, b)
		if d := matMaxAbsDiff(got, want); d > 1e-3 {
			t.Errorf("%+v: sgemm max diff %g", tc, d)
		}
	}
}

func TestSgemmParallelMatchesSerial(t *testing.T) {
	r := workload.NewRNG(61)
	a := workload.RandMatrix(r, 90, 120)
	b := workload.RandMatrix(r, 120, 40)
	want := Sgemm(a, b)
	for _, threads := range []int{1, 2, 4, 16, 200} {
		got := SgemmParallel(a, b, threads)
		if d := matMaxAbsDiff(got, want); d != 0 {
			t.Errorf("threads=%d: max diff %g", threads, d)
		}
	}
}

func TestSgemmPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sgemm mismatch did not panic")
		}
	}()
	Sgemm(tensor.NewMatrix(2, 3), tensor.NewMatrix(4, 5))
}

func TestIm2colSmallExample(t *testing.T) {
	// 3×3 single-channel input, 2×2 kernel, stride 1, no pad — the
	// Fig. 2b construction. Rows are output positions, columns the
	// flattened window.
	in := tensor.FromSlice(3, 3, 1, []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	})
	u := Im2col(in, 2, 2, 1, 0, 0)
	if u.Rows != 4 || u.Cols != 4 {
		t.Fatalf("unfolded shape %v", u)
	}
	want := [][]float32{
		{1, 2, 4, 5},
		{2, 3, 5, 6},
		{4, 5, 7, 8},
		{5, 6, 8, 9},
	}
	for r, row := range want {
		for c, v := range row {
			if u.At(r, c) != v {
				t.Errorf("u[%d][%d] = %v want %v", r, c, u.At(r, c), v)
			}
		}
	}
}

func TestIm2colPadValue(t *testing.T) {
	in := tensor.FromSlice(1, 1, 1, []float32{5})
	u := Im2col(in, 3, 3, 1, 1, -1)
	if u.Rows != 1 || u.Cols != 9 {
		t.Fatalf("unfolded shape %v", u)
	}
	for i := 0; i < 9; i++ {
		want := float32(-1)
		if i == 4 { // center tap
			want = 5
		}
		if u.At(0, i) != want {
			t.Errorf("u[0][%d] = %v want %v", i, u.At(0, i), want)
		}
	}
}

func TestConvIm2colMatchesDirect(t *testing.T) {
	r := workload.NewRNG(62)
	for _, tc := range []struct{ h, w, c, k, kh, kw, stride, pad int }{
		{5, 5, 3, 2, 3, 3, 1, 1},
		{6, 4, 8, 3, 3, 3, 1, 0},
		{8, 8, 4, 2, 2, 2, 2, 0},
		{7, 7, 16, 5, 5, 5, 1, 2},
	} {
		in := workload.RandTensor(r, tc.h, tc.w, tc.c)
		f := workload.RandFilter(r, tc.k, tc.kh, tc.kw, tc.c)
		direct := ConvDirect(in, f, tc.stride, tc.pad, 0, 1)
		im2col := ConvIm2col(in, f, tc.stride, tc.pad, 0, 2)
		if d := direct.MaxAbsDiff(im2col); d > 1e-3 {
			t.Errorf("%+v: im2col vs direct max diff %g", tc, d)
		}
	}
}

func TestConvDirectThreadsAgree(t *testing.T) {
	r := workload.NewRNG(63)
	in := workload.RandTensor(r, 9, 9, 8)
	f := workload.RandFilter(r, 4, 3, 3, 8)
	want := ConvDirect(in, f, 1, 1, 0, 1)
	for _, threads := range []int{2, 4, 100} {
		got := ConvDirect(in, f, 1, 1, 0, threads)
		if !got.Equal(want) {
			t.Errorf("threads=%d differs", threads)
		}
	}
}

func TestConvDirectPadValue(t *testing.T) {
	// With an all-ones 3×3 filter over a single 1-valued pixel and
	// padVal −1, every output tap outside the image contributes −1.
	in := tensor.FromSlice(1, 1, 1, []float32{1})
	f := tensor.NewFilter(1, 3, 3, 1)
	for i := range f.Data {
		f.Data[i] = 1
	}
	out := ConvDirect(in, f, 1, 1, -1, 1)
	if out.H != 1 || out.W != 1 {
		t.Fatalf("out shape %v", out)
	}
	// 8 taps at −1, one at +1 → −7.
	if out.At(0, 0, 0) != -7 {
		t.Errorf("padVal conv = %v want -7", out.At(0, 0, 0))
	}
}

func TestBinaryIm2colConvMatchesDirect(t *testing.T) {
	r := workload.NewRNG(64)
	for _, tc := range []struct{ h, w, c, k, pad int }{
		{5, 5, 64, 4, 1},
		{6, 6, 3, 2, 1},
		{4, 4, 128, 3, 0},
		{5, 7, 100, 2, 1},
	} {
		in := workload.PM1Tensor(r, tc.h, tc.w, tc.c)
		f := workload.PM1Filter(r, tc.k, 3, 3, tc.c)
		bc := NewBinaryIm2colConv(f, 1, tc.pad)
		got := bc.Forward(in, 2)
		want := ConvDirect(in, f, 1, tc.pad, -1, 1)
		if !got.Equal(want) {
			t.Errorf("%+v: binary im2col != direct (max diff %g)", tc, got.MaxAbsDiff(want))
		}
	}
}

// TestBinaryIm2colQuick: the unoptimized baseline agrees with the float
// reference as a property.
func TestBinaryIm2colQuick(t *testing.T) {
	f := func(seed uint64, hh, cc, kk uint8) bool {
		h := int(hh)%5 + 3
		c := int(cc)%80 + 1
		k := int(kk)%4 + 1
		r := workload.NewRNG(seed)
		in := workload.PM1Tensor(r, h, h, c)
		filt := workload.PM1Filter(r, k, 3, 3, c)
		bc := NewBinaryIm2colConv(filt, 1, 1)
		return bc.Forward(in, 1).Equal(ConvDirect(in, filt, 1, 1, -1, 1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBinaryIm2colWiderKernelStillCorrect(t *testing.T) {
	// The ablation variant installs a wider kernel; results must be
	// unchanged when the unfolded word count divides.
	r := workload.NewRNG(65)
	// 3*3*128 = 1152 bits = 18 words → divisible by 2 (W128).
	in := workload.PM1Tensor(r, 5, 5, 128)
	f := workload.PM1Filter(r, 3, 3, 3, 128)
	bc := NewBinaryIm2colConv(f, 1, 1)
	want := bc.Forward(in, 1)
	bc.Kernel = kernels.XorPop128
	got := bc.Forward(in, 1)
	if !got.Equal(want) {
		t.Error("wider kernel changed baseline results")
	}
}

func TestBinaryIm2colWords(t *testing.T) {
	// 3·3·64 = 576 bits = 9 words: not a multiple of 2/4/8 — the
	// paper's "N won't be multiple of 32 in most cases" observation at
	// word granularity.
	f := tensor.NewFilter(2, 3, 3, 64)
	bc := NewBinaryIm2colConv(f, 1, 1)
	if bc.Words() != 9 {
		t.Errorf("Words = %d want 9", bc.Words())
	}
	for _, w := range []kernels.Width{kernels.W128, kernels.W256, kernels.W512} {
		if w.Divides(bc.Words()) {
			t.Errorf("width %v unexpectedly divides the unfolded row", w)
		}
	}
}

func TestDenseFloat(t *testing.T) {
	r := workload.NewRNG(66)
	n, k := 37, 11
	w := workload.RandMatrix(r, n, k)
	in := make([]float32, n)
	for i := range in {
		in[i] = 2*r.Float32() - 1
	}
	want := make([]float32, k)
	for ki := 0; ki < k; ki++ {
		var acc float32
		for ni := 0; ni < n; ni++ {
			acc += in[ni] * w.At(ni, ki)
		}
		want[ki] = acc
	}
	for _, threads := range []int{1, 2, 5} {
		got := make([]float32, k)
		DenseFloat(in, w, got, threads)
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-4 {
				t.Errorf("threads=%d out[%d] = %v want %v", threads, i, got[i], want[i])
			}
		}
	}
}

func TestMaxPoolFloat(t *testing.T) {
	in := tensor.FromSlice(2, 2, 2, []float32{
		1, -5, 2, 8,
		-3, 7, 4, -1,
	})
	out := MaxPoolFloat(in, 2, 2, 2, 1)
	if out.H != 1 || out.W != 1 || out.C != 2 {
		t.Fatalf("pool shape %v", out)
	}
	if out.At(0, 0, 0) != 4 || out.At(0, 0, 1) != 8 {
		t.Errorf("pool = %v,%v want 4,8", out.At(0, 0, 0), out.At(0, 0, 1))
	}
}

func TestMaxPoolFloatOverlapping(t *testing.T) {
	r := workload.NewRNG(67)
	in := workload.RandTensor(r, 5, 5, 3)
	out := MaxPoolFloat(in, 3, 3, 1, 2)
	if out.H != 3 || out.W != 3 {
		t.Fatalf("pool shape %v", out)
	}
	// Spot-check center window.
	for c := 0; c < 3; c++ {
		want := float32(math.Inf(-1))
		for i := 1; i <= 3; i++ {
			for j := 1; j <= 3; j++ {
				if v := in.At(i, j, c); v > want {
					want = v
				}
			}
		}
		if out.At(1, 1, c) != want {
			t.Errorf("center pool c=%d = %v want %v", c, out.At(1, 1, c), want)
		}
	}
}

func TestFilterMatrix(t *testing.T) {
	r := workload.NewRNG(68)
	f := workload.RandFilter(r, 3, 2, 2, 5)
	w := FilterMatrix(f)
	if w.Rows != 3 || w.Cols != 20 {
		t.Fatalf("filter matrix %v", w)
	}
	if w.At(2, 7) != f.Data[2*20+7] {
		t.Error("row layout mismatch")
	}
}
