package baseline

import (
	"fmt"

	"bitflow/internal/exec"
	"bitflow/internal/tensor"
)

// sgemm block sizes: a modest cache-blocking scheme (the paper's float
// baseline rides MKL/OpenBLAS; ours is a portable blocked kernel).
const (
	sgemmMC = 64  // rows of A per block
	sgemmKC = 256 // inner dimension per block
)

// Sgemm computes C = A×B for row-major float32 matrices with k-blocked
// i-k-j loops (streaming writes to C rows, unit-stride reads of B rows).
func Sgemm(a, b *tensor.Matrix) *tensor.Matrix {
	c := tensor.NewMatrix(a.Rows, b.Cols)
	SgemmInto(a, b, c)
	return c
}

// SgemmInto computes C += A×B into the (pre-zeroed by caller if desired)
// matrix c. c must be a.Rows × b.Cols.
func SgemmInto(a, b, c *tensor.Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("baseline: Sgemm %v × %v -> %v shape mismatch", a, b, c))
	}
	sgemmRows(a, b, c, 0, a.Rows)
}

// SgemmParallel runs Sgemm with rows of A split across threads.
func SgemmParallel(a, b *tensor.Matrix, threads int) *tensor.Matrix {
	c := tensor.NewMatrix(a.Rows, b.Cols)
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("baseline: Sgemm %v × %v inner dim mismatch", a, b))
	}
	if threads <= 1 || a.Rows < 2*threads {
		sgemmRows(a, b, c, 0, a.Rows)
		return c
	}
	exec.Spawn(threads).ParallelFor(a.Rows, func(r0, r1 int) {
		sgemmRows(a, b, c, r0, r1)
	})
	return c
}

// sgemmRows computes rows [r0, r1) of C = A×B with k-blocking.
func sgemmRows(a, b, c *tensor.Matrix, r0, r1 int) {
	n := b.Cols
	for kc := 0; kc < a.Cols; kc += sgemmKC {
		kEnd := min(kc+sgemmKC, a.Cols)
		for mc := r0; mc < r1; mc += sgemmMC {
			mEnd := min(mc+sgemmMC, r1)
			for i := mc; i < mEnd; i++ {
				arow := a.Row(i)
				crow := c.Row(i)
				for k := kc; k < kEnd; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Data[k*n : (k+1)*n]
					axpy(crow, brow, av)
				}
			}
		}
	}
}

// axpy computes dst += alpha*src, unrolled by 4.
func axpy(dst, src []float32, alpha float32) {
	n := len(dst)
	_ = src[n-1]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}
