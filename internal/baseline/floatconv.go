package baseline

import (
	"fmt"

	"bitflow/internal/exec"
	"bitflow/internal/tensor"
)

// ConvDirect computes a full-precision convolution with direct
// (non-unfolded) loops. Padding positions take padVal. This is both the
// float performance baseline and the bit-exact correctness reference for
// PressedConv (applied to ±1 tensors with padVal = −1).
func ConvDirect(in *tensor.Tensor, f *tensor.Filter, stride, pad int, padVal float32, threads int) *tensor.Tensor {
	if f.C != in.C {
		panic(fmt.Sprintf("baseline: ConvDirect channels %d vs %d", f.C, in.C))
	}
	outH := (in.H+2*pad-f.KH)/stride + 1
	outW := (in.W+2*pad-f.KW)/stride + 1
	out := tensor.New(outH, outW, f.K)
	total := outH * outW
	body := func(start, end int) {
		for idx := start; idx < end; idx++ {
			y := idx / outW
			x := idx % outW
			dst := out.Pixel(y, x)
			y0 := y*stride - pad
			x0 := x*stride - pad
			for k := 0; k < f.K; k++ {
				var acc float32
				for i := 0; i < f.KH; i++ {
					sy := y0 + i
					for j := 0; j < f.KW; j++ {
						sx := x0 + j
						tap := f.Tap(k, i, j)
						if sy < 0 || sy >= in.H || sx < 0 || sx >= in.W {
							if padVal != 0 {
								for c := 0; c < in.C; c++ {
									acc += padVal * tap[c]
								}
							}
							continue
						}
						px := in.Pixel(sy, sx)
						acc += dotF32(px, tap)
					}
				}
				dst[k] = acc
			}
		}
	}
	runChunks(total, threads, body)
	return out
}

// ConvIm2col computes a full-precision convolution with the conventional
// image-to-column method: unfold, then sgemm against the flattened weight
// matrix (paper §II-B). Returns the output in NHWC. The unfold runs at
// call time — its cost is part of what Fig. 7's baseline pays.
func ConvIm2col(in *tensor.Tensor, f *tensor.Filter, stride, pad int, padVal float32, threads int) *tensor.Tensor {
	u := Im2col(in, f.KH, f.KW, stride, pad, padVal) // (outH*outW) × (kh*kw*C)
	w := FilterMatrix(f)                             // K × (kh*kw*C)
	prod := SgemmParallel(u, w.T(), threads)         // (outH*outW) × K
	outH := (in.H+2*pad-f.KH)/stride + 1
	outW := (in.W+2*pad-f.KW)/stride + 1
	return tensor.FromSlice(outH, outW, f.K, prod.Data)
}

// dotF32 returns the inner product of equal-length slices, unrolled by 4.
func dotF32(a, b []float32) float32 {
	n := len(a)
	_ = b[n-1]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// runChunks is the baseline package's thread helper. It dispatches on a
// spawn-per-call execution context, keeping the float baseline's
// historical goroutine-per-chunk cost profile while routing through the
// same chunking the binary paths use.
func runChunks(total, threads int, body func(start, end int)) {
	if threads <= 1 || total <= 1 {
		body(0, total)
		return
	}
	exec.Spawn(threads).ParallelFor(total, body)
}
