package tensor

import (
	"strings"
	"testing"
)

func TestFilterCloneSignPad(t *testing.T) {
	f := FilterFromSlice(1, 1, 2, 2, []float32{0.5, -0.5, 0, -2})
	c := f.Clone()
	c.Data[0] = 9
	if f.Data[0] != 0.5 {
		t.Error("Clone shares storage")
	}
	s := f.Sign()
	want := []float32{1, -1, 1, -1}
	for i, w := range want {
		if s.Data[i] != w {
			t.Errorf("Sign[%d] = %v want %v", i, s.Data[i], w)
		}
	}
	p := f.PadChannels(4, -1)
	if p.C != 4 || p.At(0, 0, 0, 3) != -1 || p.At(0, 0, 0, 0) != 0.5 {
		t.Error("PadChannels wrong")
	}
	if q := f.PadChannels(2, 0); !strings.Contains(q.String(), "Filter") {
		t.Error("PadChannels identity / String wrong")
	}
}

func TestFilterPadChannelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewFilter(1, 1, 1, 4).PadChannels(2, 0)
}

func TestMatrixCloneSignString(t *testing.T) {
	m := MatrixFromSlice(1, 3, []float32{1, -2, 0})
	c := m.Clone()
	c.Data[0] = 5
	if m.Data[0] != 1 {
		t.Error("Clone shares storage")
	}
	s := m.Sign()
	if s.Data[0] != 1 || s.Data[1] != -1 || s.Data[2] != 1 {
		t.Errorf("Sign = %v", s.Data)
	}
	if !strings.Contains(m.String(), "1x3") {
		t.Errorf("String %q", m.String())
	}
	row := m.Row(0)
	if len(row) != 3 || row[1] != -2 {
		t.Error("Row wrong")
	}
}

func TestMatrixFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MatrixFromSlice(2, 2, make([]float32, 3))
}

func TestTensorZeroFillString(t *testing.T) {
	x := New(1, 2, 2)
	x.Fill(3)
	if x.Data[3] != 3 {
		t.Error("Fill failed")
	}
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
	if !strings.Contains(x.String(), "1x2x2") {
		t.Errorf("String %q", x.String())
	}
}

func TestMaxAbsDiffPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(1, 1, 1).MaxAbsDiff(New(1, 1, 2))
}

func TestFromNCHWPanicsOnLength(t *testing.T) {
	for name, fn := range map[string]func(){
		"FromNCHW":       func() { FromNCHW(2, 2, 2, make([]float32, 7)) },
		"FilterFromKCHW": func() { FilterFromKCHW(1, 2, 2, 2, make([]float32, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFilterFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	FilterFromSlice(1, 1, 1, 2, make([]float32, 3))
}
