package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Set(1, 2, 3, 7)
	if x.At(1, 2, 3) != 7 {
		t.Error("At/Set roundtrip failed")
	}
	if x.Data[(1*3+2)*4+3] != 7 {
		t.Error("NHWC linear index wrong")
	}
	px := x.Pixel(1, 2)
	if len(px) != 4 || px[3] != 7 {
		t.Error("Pixel slice wrong")
	}
	px[0] = 9
	if x.At(1, 2, 0) != 9 {
		t.Error("Pixel must alias storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := New(1, 1, 2)
	x.Set(0, 0, 0, 5)
	y := x.Clone()
	y.Set(0, 0, 0, 6)
	if x.At(0, 0, 0) != 5 {
		t.Error("Clone shares storage")
	}
}

func TestSign(t *testing.T) {
	x := FromSlice(1, 1, 4, []float32{-2, 0, 3, -0.0001})
	s := x.Sign()
	want := []float32{-1, 1, 1, -1}
	for i, w := range want {
		if s.Data[i] != w {
			t.Errorf("Sign[%d] = %v want %v", i, s.Data[i], w)
		}
	}
}

func TestPadSpatial(t *testing.T) {
	x := New(2, 2, 1)
	x.Fill(3)
	p := x.PadSpatial(1, -1)
	if p.H != 4 || p.W != 4 {
		t.Fatalf("padded shape %v", p)
	}
	if p.At(0, 0, 0) != -1 || p.At(3, 3, 0) != -1 {
		t.Error("margin not padded")
	}
	if p.At(1, 1, 0) != 3 || p.At(2, 2, 0) != 3 {
		t.Error("interior not copied")
	}
	// p == 0 must be a plain copy.
	q := x.PadSpatial(0, -1)
	if !q.Equal(x) {
		t.Error("PadSpatial(0) != identity")
	}
}

func TestPadChannels(t *testing.T) {
	x := FromSlice(1, 2, 2, []float32{1, 2, 3, 4})
	p := x.PadChannels(5, -1)
	if p.C != 5 {
		t.Fatalf("C = %d", p.C)
	}
	if p.At(0, 1, 0) != 3 || p.At(0, 1, 1) != 4 {
		t.Error("channels not copied")
	}
	if p.At(0, 0, 4) != -1 {
		t.Error("pad channel wrong")
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 1, 3, []float32{1, 2.5, 3})
	if a.Equal(b) {
		t.Error("Equal on different data")
	}
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
	if !a.Equal(a.Clone()) {
		t.Error("Equal on clone failed")
	}
	c := New(1, 1, 2)
	if a.Equal(c) {
		t.Error("Equal across shapes")
	}
}

func TestNCHWRoundtrip(t *testing.T) {
	f := func(seed int64, hh, ww, cc uint8) bool {
		h := int(hh)%5 + 1
		w := int(ww)%5 + 1
		c := int(cc)%5 + 1
		x := New(h, w, c)
		s := seed
		for i := range x.Data {
			s = s*6364136223846793005 + 1442695040888963407
			x.Data[i] = float32(s % 97)
		}
		y := FromNCHW(h, w, c, x.ToNCHW())
		return y.Equal(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterIndexing(t *testing.T) {
	f := NewFilter(2, 3, 3, 4)
	f.Set(1, 2, 0, 3, 8)
	if f.At(1, 2, 0, 3) != 8 {
		t.Error("filter At/Set roundtrip")
	}
	tap := f.Tap(1, 2, 0)
	if tap[3] != 8 {
		t.Error("Tap slice wrong")
	}
}

func TestFilterFromKCHW(t *testing.T) {
	// K=1, C=2, KH=1, KW=2 in KCHW order: [c0j0, c0j1, c1j0, c1j1]
	f := FilterFromKCHW(1, 2, 1, 2, []float32{10, 11, 20, 21})
	if f.At(0, 0, 0, 0) != 10 || f.At(0, 0, 1, 0) != 11 {
		t.Error("channel 0 misplaced")
	}
	if f.At(0, 0, 0, 1) != 20 || f.At(0, 0, 1, 1) != 21 {
		t.Error("channel 1 misplaced")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 4)
	if m.At(1, 2) != 4 {
		t.Error("matrix At/Set")
	}
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 4 {
		t.Error("transpose wrong")
	}
}

func TestMatMul(t *testing.T) {
	a := MatrixFromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := MatrixFromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("MatMul[%d] = %v want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative tensor":   func() { New(-1, 1, 1) },
		"FromSlice length":  func() { FromSlice(2, 2, 2, make([]float32, 7)) },
		"negative filter":   func() { NewFilter(1, -1, 1, 1) },
		"negative matrix":   func() { NewMatrix(-1, 2) },
		"PadChannels small": func() { New(1, 1, 4).PadChannels(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
