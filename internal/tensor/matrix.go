package tensor

import "fmt"

// Matrix is a dense row-major float32 matrix, used by fully connected
// operators (paper §III-C: input M×N, weight N×K, with M the batch size,
// fixed at 1 for inference).
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values; index r*Cols + c.
	Data []float32
}

// NewMatrix allocates a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative matrix dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float32, r*c)}
}

// MatrixFromSlice wraps data (length must be r*c) without copying.
func MatrixFromSlice(r, c int, data []float32) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: MatrixFromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 {
	off := r * m.Cols
	return m.Data[off : off+m.Cols : off+m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// String summarizes the matrix shape.
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// Sign returns a new matrix with sign(x) applied elementwise
// (+1 for x >= 0, −1 otherwise).
func (m *Matrix) Sign() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v >= 0 {
			out.Data[i] = 1
		} else {
			out.Data[i] = -1
		}
	}
	return out
}

// MatMul computes a × b with a naive triple loop. It is the correctness
// reference for both sgemm and bgemm paths; performance-sensitive callers
// use internal/baseline's blocked sgemm or internal/kernels' bgemm.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %v × %v inner dim mismatch", a, b))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}
