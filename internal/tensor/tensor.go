// Package tensor provides dense float32 tensors in the NHWC ("locality
// aware") layout used throughout BitFlow, plus matrices for fully
// connected operators.
//
// BitFlow targets low-latency inference with batch = 1 (paper §III-B), so
// the feature-map type carries H, W and C dimensions only; the batch
// dimension is implicit and always 1. Elements are stored row-major with
// interleaved channels: element (h, w, c) lives at linear position
// (h*W+w)*C + c, exactly the layout of paper §III-B ("A is stored in
// memory using row-major order with interleaved channels").
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense float32 feature map in NHWC layout with batch 1.
// The zero value is an empty tensor; use New to allocate.
type Tensor struct {
	H, W, C int
	// Data holds H*W*C values; index (h*W+w)*C + c.
	Data []float32
}

// New allocates a zeroed H×W×C tensor.
func New(h, w, c int) *Tensor {
	if h < 0 || w < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%dx%d", h, w, c))
	}
	return &Tensor{H: h, W: w, C: c, Data: make([]float32, h*w*c)}
}

// FromSlice wraps data (length must be h*w*c) without copying.
func FromSlice(h, w, c int, data []float32) *Tensor {
	if len(data) != h*w*c {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d*%d", len(data), h, w, c))
	}
	return &Tensor{H: h, W: w, C: c, Data: data}
}

// At returns the element at (h, w, c).
func (t *Tensor) At(h, w, c int) float32 {
	return t.Data[(h*t.W+w)*t.C+c]
}

// Set assigns the element at (h, w, c).
func (t *Tensor) Set(h, w, c int, v float32) {
	t.Data[(h*t.W+w)*t.C+c] = v
}

// Pixel returns the C-length channel slice of pixel (h, w); the slice
// aliases the tensor's storage.
func (t *Tensor) Pixel(h, w int) []float32 {
	off := (h*t.W + w) * t.C
	return t.Data[off : off+t.C : off+t.C]
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return t.H * t.W * t.C }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.H, t.W, t.C)
	copy(out.Data, t.Data)
	return out
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether t and u have identical dimensions.
func (t *Tensor) SameShape(u *Tensor) bool {
	return t.H == u.H && t.W == u.W && t.C == u.C
}

// String summarizes the tensor shape (not its contents).
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%dx%dx%d)", t.H, t.W, t.C)
}

// Sign returns a new tensor with the paper's activation function
// (Equation 3): +1 where x >= 0, −1 where x < 0.
func (t *Tensor) Sign() *Tensor {
	out := New(t.H, t.W, t.C)
	for i, v := range t.Data {
		if v >= 0 {
			out.Data[i] = 1
		} else {
			out.Data[i] = -1
		}
	}
	return out
}

// PadSpatial returns a new tensor of shape (H+2p)×(W+2p)×C with t copied
// into the interior and the margin filled with pad. BNN spatial padding
// pads bit value 0, i.e. feature value −1; float baselines pad 0.
func (t *Tensor) PadSpatial(p int, pad float32) *Tensor {
	if p == 0 {
		return t.Clone()
	}
	out := New(t.H+2*p, t.W+2*p, t.C)
	if pad != 0 {
		out.Fill(pad)
	}
	for h := 0; h < t.H; h++ {
		src := t.Data[h*t.W*t.C : (h+1)*t.W*t.C]
		dstOff := ((h+p)*out.W + p) * out.C
		copy(out.Data[dstOff:dstOff+len(src)], src)
	}
	return out
}

// PadChannels returns a new tensor of shape H×W×cTo with the original
// channels copied and channels [C, cTo) filled with pad.
func (t *Tensor) PadChannels(cTo int, pad float32) *Tensor {
	if cTo < t.C {
		panic(fmt.Sprintf("tensor: PadChannels %d < C=%d", cTo, t.C))
	}
	if cTo == t.C {
		return t.Clone()
	}
	out := New(t.H, t.W, cTo)
	for h := 0; h < t.H; h++ {
		for w := 0; w < t.W; w++ {
			src := t.Pixel(h, w)
			dst := out.Pixel(h, w)
			copy(dst, src)
			for c := t.C; c < cTo; c++ {
				dst[c] = pad
			}
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// t and u, which must have the same shape.
func (t *Tensor) MaxAbsDiff(u *Tensor) float64 {
	if !t.SameShape(u) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i]) - float64(u.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Equal reports exact elementwise equality of t and u (same shape, same
// bits, with NaN != NaN as usual for floats).
func (t *Tensor) Equal(u *Tensor) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != u.Data[i] {
			return false
		}
	}
	return true
}
