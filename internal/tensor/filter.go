package tensor

import "fmt"

// Filter is a bank of K convolution filters of spatial size KH×KW over C
// input channels (paper §II-B: W_{k,c,i,j}). Storage is K-major with each
// filter itself in HWC order so that the channel dimension is innermost,
// mirroring the activation layout and making channel-wise bit-packing a
// contiguous walk: element (k, i, j, c) lives at ((k*KH+i)*KW+j)*C + c.
type Filter struct {
	K, KH, KW, C int
	Data         []float32
}

// NewFilter allocates a zeroed filter bank.
func NewFilter(k, kh, kw, c int) *Filter {
	if k < 0 || kh < 0 || kw < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative filter dimension %dx%dx%dx%d", k, kh, kw, c))
	}
	return &Filter{K: k, KH: kh, KW: kw, C: c, Data: make([]float32, k*kh*kw*c)}
}

// FilterFromSlice wraps data (length must be k*kh*kw*c) without copying.
func FilterFromSlice(k, kh, kw, c int, data []float32) *Filter {
	if len(data) != k*kh*kw*c {
		panic(fmt.Sprintf("tensor: FilterFromSlice length %d != %d*%d*%d*%d", len(data), k, kh, kw, c))
	}
	return &Filter{K: k, KH: kh, KW: kw, C: c, Data: data}
}

// At returns element (k, i, j, c).
func (f *Filter) At(k, i, j, c int) float32 {
	return f.Data[((k*f.KH+i)*f.KW+j)*f.C+c]
}

// Set assigns element (k, i, j, c).
func (f *Filter) Set(k, i, j, c int, v float32) {
	f.Data[((k*f.KH+i)*f.KW+j)*f.C+c] = v
}

// Tap returns the C-length channel slice of filter k at spatial tap (i, j).
func (f *Filter) Tap(k, i, j int) []float32 {
	off := ((k*f.KH+i)*f.KW + j) * f.C
	return f.Data[off : off+f.C : off+f.C]
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	out := NewFilter(f.K, f.KH, f.KW, f.C)
	copy(out.Data, f.Data)
	return out
}

// Sign returns a new filter bank with sign(x) applied elementwise.
func (f *Filter) Sign() *Filter {
	out := NewFilter(f.K, f.KH, f.KW, f.C)
	for i, v := range f.Data {
		if v >= 0 {
			out.Data[i] = 1
		} else {
			out.Data[i] = -1
		}
	}
	return out
}

// PadChannels returns a new filter bank over cTo channels with the
// original weights copied and new channels set to pad.
func (f *Filter) PadChannels(cTo int, pad float32) *Filter {
	if cTo < f.C {
		panic(fmt.Sprintf("tensor: Filter.PadChannels %d < C=%d", cTo, f.C))
	}
	if cTo == f.C {
		return f.Clone()
	}
	out := NewFilter(f.K, f.KH, f.KW, cTo)
	for k := 0; k < f.K; k++ {
		for i := 0; i < f.KH; i++ {
			for j := 0; j < f.KW; j++ {
				src := f.Tap(k, i, j)
				dst := out.Tap(k, i, j)
				copy(dst, src)
				for c := f.C; c < cTo; c++ {
					dst[c] = pad
				}
			}
		}
	}
	return out
}

// String summarizes the filter shape.
func (f *Filter) String() string {
	return fmt.Sprintf("Filter(K=%d %dx%dx%d)", f.K, f.KH, f.KW, f.C)
}
