package tensor

// This file converts between NHWC (BitFlow's locality-aware layout,
// paper §III-B) and NCHW (the default of mainstream frameworks such as
// Caffe/MXNet/PyTorch, which the paper contrasts against). The ablation
// benchmarks use these to quantify what adopting NHWC buys.

// FromNCHW builds an NHWC tensor from data laid out as NCHW
// (c-major: index (c*H+h)*W + w), batch 1.
func FromNCHW(h, w, c int, data []float32) *Tensor {
	if len(data) != h*w*c {
		panic("tensor: FromNCHW length mismatch")
	}
	out := New(h, w, c)
	for ci := 0; ci < c; ci++ {
		for hi := 0; hi < h; hi++ {
			for wi := 0; wi < w; wi++ {
				out.Data[(hi*w+wi)*c+ci] = data[(ci*h+hi)*w+wi]
			}
		}
	}
	return out
}

// ToNCHW returns t's contents as a freshly allocated NCHW slice.
func (t *Tensor) ToNCHW() []float32 {
	out := make([]float32, t.Len())
	for c := 0; c < t.C; c++ {
		for h := 0; h < t.H; h++ {
			for w := 0; w < t.W; w++ {
				out[(c*t.H+h)*t.W+w] = t.Data[(h*t.W+w)*t.C+c]
			}
		}
	}
	return out
}

// FilterFromKCHW builds a Filter (K,KH,KW,C innermost-C layout) from data
// laid out as K,C,KH,KW (the common framework filter layout).
func FilterFromKCHW(k, c, kh, kw int, data []float32) *Filter {
	if len(data) != k*c*kh*kw {
		panic("tensor: FilterFromKCHW length mismatch")
	}
	out := NewFilter(k, kh, kw, c)
	for ki := 0; ki < k; ki++ {
		for ci := 0; ci < c; ci++ {
			for i := 0; i < kh; i++ {
				for j := 0; j < kw; j++ {
					out.Set(ki, i, j, ci, data[((ki*c+ci)*kh+i)*kw+j])
				}
			}
		}
	}
	return out
}
