package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"bitflow/internal/graph"
)

func sampleTimings() []graph.LayerTiming {
	return []graph.LayerTiming{
		{Name: "input", Kind: "pack", Duration: 100 * time.Microsecond},
		{Name: "conv1", Kind: "conv", Duration: 2 * time.Millisecond, Units: 1024},
		{Name: "fc1", Kind: "fc", Duration: 0, Units: 10}, // zero-width layer
	}
}

func TestTraceRoundtrip(t *testing.T) {
	w := NewWriter("demo")
	w.AddPass(sampleTimings())
	w.AddPass(sampleTimings())
	if w.Passes() != 2 {
		t.Fatalf("passes %d", w.Passes())
	}
	var buf bytes.Buffer
	if err := w.Flush(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("%d events, want 6", len(doc.TraceEvents))
	}
	if doc.Metadata["network"] != "demo" {
		t.Error("metadata lost")
	}
	// Events within one pass are contiguous and monotone.
	prevEnd := -1.0
	for _, e := range doc.TraceEvents[:3] {
		if e.Ph != "X" {
			t.Errorf("phase %q", e.Ph)
		}
		if e.Ts < prevEnd {
			t.Errorf("overlapping events: ts %v < prev end %v", e.Ts, prevEnd)
		}
		prevEnd = e.Ts + e.Dur
		if e.Dur <= 0 {
			t.Error("zero-width event leaked through")
		}
	}
	// Pass threads are distinct.
	if doc.TraceEvents[0].Tid == doc.TraceEvents[3].Tid {
		t.Error("passes share a thread id")
	}
	// Units propagate.
	if doc.TraceEvents[1].Args["parallel_units"] != "1024" {
		t.Errorf("args %v", doc.TraceEvents[1].Args)
	}
}

func TestEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter("empty").Flush(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}
