// Package trace exports per-layer inference timelines in the Chrome
// trace-event format (chrome://tracing, Perfetto), so the network-level
// behaviour — which layers dominate, how passes vary — can be inspected
// visually. One trace "thread" per inference pass; one complete event
// per layer.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"bitflow/internal/graph"
)

// event is one Chrome trace-event entry ("X" = complete event).
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Writer accumulates passes and serializes them on Flush.
type Writer struct {
	name   string
	events []event
	passes int
	cursor float64 // running timestamp in µs
}

// NewWriter starts a trace for the given network name.
func NewWriter(name string) *Writer { return &Writer{name: name} }

// AddPass appends one inference pass's layer timings as a contiguous
// span on its own trace thread.
func (w *Writer) AddPass(timings []graph.LayerTiming) {
	w.passes++
	tid := w.passes
	start := w.cursor
	ts := start
	for _, lt := range timings {
		dur := float64(lt.Duration.Microseconds())
		if dur <= 0 {
			dur = 0.1 // chrome drops zero-width events
		}
		args := map[string]string{"kind": lt.Kind}
		if lt.Units > 0 {
			args["parallel_units"] = fmt.Sprint(lt.Units)
		}
		w.events = append(w.events, event{
			Name: lt.Name,
			Cat:  lt.Kind,
			Ph:   "X",
			Ts:   ts,
			Dur:  dur,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
		ts += dur
	}
	w.cursor = ts
}

// Passes reports how many passes were recorded.
func (w *Writer) Passes() int { return w.passes }

// Flush writes the trace JSON ({"traceEvents": [...]}) to out.
func (w *Writer) Flush(out io.Writer) error {
	doc := struct {
		TraceEvents []event           `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata"`
	}{
		TraceEvents: w.events,
		Metadata:    map[string]string{"network": w.name, "tool": "bitflow"},
	}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}
