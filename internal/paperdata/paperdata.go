// Package paperdata records the numbers the paper reports for each
// figure and table, so the benchmark harness can print measured-vs-paper
// columns and EXPERIMENTS.md can be regenerated mechanically.
//
// Values stated in the paper's prose are exact; values that only appear
// as bar labels in the figures are best-effort chart reads and are marked
// approximate. Where the OCR of the source text mangles a figure's label
// row, the prose statements take precedence.
package paperdata

// Fig7 reports the single-core Xeon Phi accelerations of Fig. 7, with the
// counterpart float operator = 1×.
type Fig7Row struct {
	Op string
	// Unoptimized is the un-vectorized binary kernel's acceleration.
	Unoptimized float64
	// BitFlow is the vectorized kernel's acceleration.
	BitFlow float64
	// Approx marks chart-read values.
	Approx bool
}

// Fig7 rows. Prose anchors: conv2.1 both 10×; conv3.1 1.4× over
// unoptimized (14× total); conv4.1 1.9×; conv5.1 2.5×; fc6/fc7 2.3× over
// unoptimized and ≈50× over float; pool accelerations modest; average
// vectorization gain 1.83×.
var Fig7 = []Fig7Row{
	{Op: "conv2.1", Unoptimized: 10, BitFlow: 10},
	{Op: "conv3.1", Unoptimized: 10, BitFlow: 14},
	{Op: "conv4.1", Unoptimized: 10, BitFlow: 19, Approx: true},
	{Op: "conv5.1", Unoptimized: 10, BitFlow: 25, Approx: true},
	{Op: "fc6", Unoptimized: 21, BitFlow: 49},
	{Op: "fc7", Unoptimized: 19, BitFlow: 47},
	{Op: "pool4", Unoptimized: 11, BitFlow: 27, Approx: true},
	{Op: "pool5", Unoptimized: 14, BitFlow: 37, Approx: true},
}

// Fig7AvgVectorSpeedup is the paper's headline: "Vectorization brings 83%
// speedup over unoptimized BNN implementations on average".
const Fig7AvgVectorSpeedup = 1.83

// Fig8Row reports Fig. 8 (Intel i7-7700HQ): acceleration over the
// single-thread float operator at 1 and 4 threads.
type Fig8Row struct {
	Op               string
	Thread1, Thread4 float64
	Approx           bool
}

// Fig8 rows. Prose anchors: conv2.1 scales 3.9× from 1→4 cores; conv3.1,
// conv4.1, conv5.1 ≈3×. Remaining magnitudes are chart reads.
var Fig8 = []Fig8Row{
	{Op: "conv2.1", Thread1: 10, Thread4: 39, Approx: true},
	{Op: "conv3.1", Thread1: 15, Thread4: 52, Approx: true},
	{Op: "conv4.1", Thread1: 18, Thread4: 63, Approx: true},
	{Op: "conv5.1", Thread1: 19, Thread4: 66, Approx: true},
	{Op: "fc6", Thread1: 56, Thread4: 163, Approx: true},
	{Op: "fc7", Thread1: 47, Thread4: 148, Approx: true},
	{Op: "pool4", Thread1: 7, Thread4: 15, Approx: true},
	{Op: "pool5", Thread1: 11, Thread4: 44, Approx: true},
}

// Fig9Row reports Fig. 9 (Xeon Phi 7210): acceleration over the
// single-thread float operator at 1/4/16/64 threads.
type Fig9Row struct {
	Op                                   string
	Thread1, Thread4, Thread16, Thread64 float64
	Approx                               bool
}

// Fig9 rows. Prose anchors: conv2.1 reaches 49.3× over its own single
// core and 493× over float at 64 threads; conv4.1 stops scaling well
// beyond 16 cores (< 2× more at 64); conv5.1 stops beyond 4 cores
// (< 2× more at 16).
var Fig9 = []Fig9Row{
	{Op: "conv2.1", Thread1: 10, Thread4: 36, Thread16: 170, Thread64: 493, Approx: true},
	{Op: "conv3.1", Thread1: 14, Thread4: 48, Thread16: 174, Thread64: 522, Approx: true},
	{Op: "conv4.1", Thread1: 19, Thread4: 52, Thread16: 168, Thread64: 347, Approx: true},
	{Op: "conv5.1", Thread1: 27, Thread4: 99, Thread16: 174, Thread64: 290, Approx: true},
	{Op: "fc6", Thread1: 49, Thread4: 131, Thread16: 302, Thread64: 538, Approx: true},
	{Op: "fc7", Thread1: 47, Thread4: 126, Thread16: 289, Thread64: 457, Approx: true},
	{Op: "pool4", Thread1: 11, Thread4: 34, Thread16: 88, Thread64: 158, Approx: true},
	{Op: "pool5", Thread1: 14, Thread4: 39, Thread16: 91, Thread64: 133, Approx: true},
}

// Fig9Conv21SelfScaling is the prose anchor "conv2.1 … achieves 49.3×
// acceleration over single-core" at 64 threads.
const Fig9Conv21SelfScaling = 49.3

// Fig11 end-to-end VGG times in milliseconds (prose-exact).
type Fig11Row struct {
	Network              string
	GTX1080, I7, XeonPhi float64 // ms
}

// Fig11 holds the paper's exact end-to-end numbers.
var Fig11 = []Fig11Row{
	{Network: "VGG16", GTX1080: 12.87, I7: 16.10, XeonPhi: 11.82},
	{Network: "VGG19", GTX1080: 14.92, I7: 18.96, XeonPhi: 13.68},
}

// Fig11PhiSpeedupVGG16 and Fig11PhiSpeedupVGG19 are the prose headline
// speedups of BitFlow-on-Phi over the GPU ("8.9% speedup over GTX 1080
// for VGG16, and 9.1% for VGG19").
const (
	Fig11PhiSpeedupVGG16 = 1.089
	Fig11PhiSpeedupVGG19 = 1.091
)

// TableVRow reports the accuracy comparison of paper Table V.
type TableVRow struct {
	Dataset       string
	FullPrecision float64 // %
	Binarized     float64 // %
}

// TableV holds the paper's accuracy numbers (prose-exact) and the model
// sizes. The accuracy gap widens with task difficulty: 1.2 points on
// MNIST, 4.7 on CIFAR-10, 11.6 on ImageNet top-5.
var TableV = []TableVRow{
	{Dataset: "MNIST", FullPrecision: 99.4, Binarized: 98.2},
	{Dataset: "CIFAR10", FullPrecision: 92.5, Binarized: 87.8},
	{Dataset: "ImageNet top-5", FullPrecision: 88.4, Binarized: 76.8},
}

// Model sizes (MB). The full-precision figure is the prose "over 500 MB";
// 528 MB is the standard VGG-16 float32 weight size, and 16.5 MB the 32×
// compressed size.
const (
	TableVFullPrecisionMB = 528.0
	TableVBinarizedMB     = 16.5
)
