package paperdata

import "testing"

// The paper-data constants feed the harness's measured-vs-paper columns;
// these tests pin the prose-exact anchors so accidental edits are caught.

func TestFig7ProseAnchors(t *testing.T) {
	rows := map[string]Fig7Row{}
	for _, r := range Fig7 {
		rows[r.Op] = r
	}
	if len(Fig7) != 8 {
		t.Fatalf("Fig7 has %d rows, Table IV has 8 operators", len(Fig7))
	}
	// conv2.1: "both BitFlow and unoptimized binary kernel achieve 10×".
	if r := rows["conv2.1"]; r.Unoptimized != 10 || r.BitFlow != 10 {
		t.Errorf("conv2.1 anchors %v", r)
	}
	// conv3.1: "1.4× faster than unoptimized … and 14× over the baseline".
	if r := rows["conv3.1"]; r.BitFlow != 14 {
		t.Errorf("conv3.1 anchor %v", r)
	}
	// fc: "approximately 50× acceleration over float-value operators".
	if r := rows["fc6"]; r.BitFlow < 45 || r.BitFlow > 55 {
		t.Errorf("fc6 anchor %v", r)
	}
	// Vector gains must be ≥ 1 everywhere (vectorization never hurts in
	// the paper's data).
	for _, r := range Fig7 {
		if r.BitFlow < r.Unoptimized {
			t.Errorf("%s: BitFlow %v below unoptimized %v", r.Op, r.BitFlow, r.Unoptimized)
		}
	}
}

func TestFig9ProseAnchors(t *testing.T) {
	for _, r := range Fig9 {
		if r.Op == "conv2.1" {
			// "493× acceleration over the float-value baseline".
			if r.Thread64 != 493 {
				t.Errorf("conv2.1 64t anchor %v", r.Thread64)
			}
			// "49.3× acceleration over single-core": 493/10 with the 1t
			// chart read.
			if self := r.Thread64 / r.Thread1; self < 40 || self > 60 {
				t.Errorf("conv2.1 self-scaling %v vs prose %v", self, Fig9Conv21SelfScaling)
			}
		}
		// Acceleration must be monotone in threads for every operator.
		if !(r.Thread1 <= r.Thread4 && r.Thread4 <= r.Thread16 && r.Thread16 <= r.Thread64) {
			t.Errorf("%s: non-monotone thread ladder %+v", r.Op, r)
		}
	}
}

func TestFig11ExactNumbers(t *testing.T) {
	if len(Fig11) != 2 {
		t.Fatal("Fig11 needs VGG16 and VGG19")
	}
	v16, v19 := Fig11[0], Fig11[1]
	if v16.GTX1080 != 12.87 || v16.I7 != 16.10 || v16.XeonPhi != 11.82 {
		t.Errorf("VGG16 row %+v", v16)
	}
	if v19.GTX1080 != 14.92 || v19.I7 != 18.96 || v19.XeonPhi != 13.68 {
		t.Errorf("VGG19 row %+v", v19)
	}
	// The headline speedups must match the raw numbers: 12.87/11.82 ≈ 1.089.
	if r := v16.GTX1080 / v16.XeonPhi; r < Fig11PhiSpeedupVGG16-0.01 || r > Fig11PhiSpeedupVGG16+0.01 {
		t.Errorf("VGG16 headline %v vs rows %v", Fig11PhiSpeedupVGG16, r)
	}
	if r := v19.GTX1080 / v19.XeonPhi; r < Fig11PhiSpeedupVGG19-0.01 || r > Fig11PhiSpeedupVGG19+0.01 {
		t.Errorf("VGG19 headline %v vs rows %v", Fig11PhiSpeedupVGG19, r)
	}
}

func TestTableVAnchors(t *testing.T) {
	if len(TableV) != 3 {
		t.Fatal("Table V has three datasets")
	}
	prevGap := -1.0
	for _, r := range TableV {
		if r.Binarized >= r.FullPrecision {
			t.Errorf("%s: binarized above full precision", r.Dataset)
		}
		gap := r.FullPrecision - r.Binarized
		if gap <= prevGap {
			t.Errorf("%s: gap %v does not widen (prev %v)", r.Dataset, gap, prevGap)
		}
		prevGap = gap
	}
	if TableVFullPrecisionMB/TableVBinarizedMB < 30 {
		t.Error("model size ratio should be ≈32×")
	}
}
