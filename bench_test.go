// Benchmarks regenerating the paper's tables and figures as testing.B
// targets (one family per figure — see DESIGN.md §4), plus ablation
// benches for the design choices BitFlow makes. The cmd/bitflow-bench
// harness prints the same experiments as formatted tables with
// paper-value columns.
//
// Figure benches run the paper-scale Table IV shapes; ablations use
// smaller shapes where the contrast is unchanged.
package bitflow_test

import (
	"sync"
	"testing"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

const benchSeed = 2018

func detect() sched.Features { return sched.Detect() }

// ---------------------------------------------------------------------
// Fig. 7: single-core float vs unoptimized-binary vs BitFlow, per op.

// convBench holds a ready-to-run conv trio.
type convBench struct {
	in     *tensor.Tensor
	filt   *tensor.Filter
	cfg    workload.OpConfig
	conv   *core.Conv
	packed *bitpack.Packed
	pOut   *bitpack.Packed
	im2col *baseline.BinaryIm2colConv
}

var convCache sync.Map

func convFor(b *testing.B, name string) *convBench {
	if v, ok := convCache.Load(name); ok {
		return v.(*convBench)
	}
	cfg, ok := workload.FindOp(name)
	if !ok {
		b.Fatalf("no such op %s", name)
	}
	r := workload.NewRNG(benchSeed)
	shape, err := sched.InferConv(cfg.H, cfg.W, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, cfg.Pad)
	if err != nil {
		b.Fatal(err)
	}
	plan := sched.Select(cfg.C, detect())
	cb := &convBench{
		cfg:  cfg,
		in:   workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C),
		filt: workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C),
	}
	cb.conv, err = core.NewConv(shape, plan, cb.filt)
	if err != nil {
		b.Fatal(err)
	}
	cb.packed = cb.conv.NewInput()
	bitpack.PackTensorInto(cb.in, cb.packed)
	outPlan := sched.Select(cfg.K, detect())
	cb.pOut = bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, outPlan.Words, 0, 0)
	cb.im2col = baseline.NewBinaryIm2colConv(cb.filt, cfg.Stride, cfg.Pad)
	convCache.Store(name, cb)
	return cb
}

func benchConvFloat(b *testing.B, name string) {
	cb := convFor(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ConvDirect(cb.in, cb.filt, cb.cfg.Stride, cb.cfg.Pad, 0, 1)
	}
}

func benchConvUnopt(b *testing.B, name string) {
	cb := convFor(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.im2col.Forward(cb.in, 1)
	}
}

func benchConvBitFlow(b *testing.B, name string, threads int) {
	cb := convFor(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb.conv.ForwardPacked(cb.packed, cb.pOut, exec.Threads(threads))
	}
}

func BenchmarkFig7Conv21Float(b *testing.B)   { benchConvFloat(b, "conv2.1") }
func BenchmarkFig7Conv21Unopt(b *testing.B)   { benchConvUnopt(b, "conv2.1") }
func BenchmarkFig7Conv21BitFlow(b *testing.B) { benchConvBitFlow(b, "conv2.1", 1) }
func BenchmarkFig7Conv31Float(b *testing.B)   { benchConvFloat(b, "conv3.1") }
func BenchmarkFig7Conv31Unopt(b *testing.B)   { benchConvUnopt(b, "conv3.1") }
func BenchmarkFig7Conv31BitFlow(b *testing.B) { benchConvBitFlow(b, "conv3.1", 1) }
func BenchmarkFig7Conv41Float(b *testing.B)   { benchConvFloat(b, "conv4.1") }
func BenchmarkFig7Conv41Unopt(b *testing.B)   { benchConvUnopt(b, "conv4.1") }
func BenchmarkFig7Conv41BitFlow(b *testing.B) { benchConvBitFlow(b, "conv4.1", 1) }
func BenchmarkFig7Conv51Float(b *testing.B)   { benchConvFloat(b, "conv5.1") }
func BenchmarkFig7Conv51Unopt(b *testing.B)   { benchConvUnopt(b, "conv5.1") }
func BenchmarkFig7Conv51BitFlow(b *testing.B) { benchConvBitFlow(b, "conv5.1", 1) }

// Dense trio (fc6/fc7).

type denseBench struct {
	cfg     workload.OpConfig
	w       *tensor.Matrix
	inVals  []float32
	d       *core.Dense
	packed  []uint64
	out     []int32
	outF    []float32
	wPacked *bitpack.PackedMatrix
	scratch []uint64
}

var denseCache sync.Map

func denseFor(b *testing.B, name string) *denseBench {
	if v, ok := denseCache.Load(name); ok {
		return v.(*denseBench)
	}
	cfg, ok := workload.FindOp(name)
	if !ok {
		b.Fatalf("no such op %s", name)
	}
	r := workload.NewRNG(benchSeed)
	shape, err := sched.InferFC(cfg.N, cfg.K)
	if err != nil {
		b.Fatal(err)
	}
	plan := sched.Select(cfg.N, detect())
	db := &denseBench{cfg: cfg, w: workload.PM1Matrix(r, cfg.N, cfg.K)}
	db.inVals = make([]float32, cfg.N)
	for i := range db.inVals {
		db.inVals[i] = r.PM1()
	}
	db.d, err = core.NewDense(shape, plan, db.w)
	if err != nil {
		b.Fatal(err)
	}
	db.packed = db.d.NewInput()
	bitpack.PackVectorInto(db.packed, db.inVals)
	db.out = make([]int32, cfg.K)
	db.outF = make([]float32, cfg.K)
	db.wPacked = bitpack.PackMatrixBT(db.w, bitpack.WordsFor(cfg.N))
	db.scratch = make([]uint64, bitpack.WordsFor(cfg.N))
	denseCache.Store(name, db)
	return db
}

func benchDenseFloat(b *testing.B, name string) {
	db := denseFor(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.DenseFloat(db.inVals, db.w, db.outF, 1)
	}
}

func benchDenseUnopt(b *testing.B, name string) {
	db := denseFor(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitpack.PackVectorInto(db.scratch, db.inVals)
		for k := 0; k < db.cfg.K; k++ {
			acc := kernels.XorPop64(db.scratch, db.wPacked.RowWords(k))
			db.out[k] = int32(db.cfg.N) - 2*int32(acc)
		}
	}
}

func benchDenseBitFlow(b *testing.B, name string, threads int) {
	db := denseFor(b, name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.d.Forward(db.packed, db.out, exec.Threads(threads))
	}
}

func BenchmarkFig7Fc6Float(b *testing.B)   { benchDenseFloat(b, "fc6") }
func BenchmarkFig7Fc6Unopt(b *testing.B)   { benchDenseUnopt(b, "fc6") }
func BenchmarkFig7Fc6BitFlow(b *testing.B) { benchDenseBitFlow(b, "fc6", 1) }
func BenchmarkFig7Fc7Float(b *testing.B)   { benchDenseFloat(b, "fc7") }
func BenchmarkFig7Fc7Unopt(b *testing.B)   { benchDenseUnopt(b, "fc7") }
func BenchmarkFig7Fc7BitFlow(b *testing.B) { benchDenseBitFlow(b, "fc7", 1) }

// Pool trio (pool4/pool5).

type poolBench struct {
	cfg    workload.OpConfig
	in     *tensor.Tensor
	pool   *core.Pool
	packed *bitpack.Packed
	pOut   *bitpack.Packed
}

var poolCache sync.Map

func poolFor(b *testing.B, name string) *poolBench {
	if v, ok := poolCache.Load(name); ok {
		return v.(*poolBench)
	}
	cfg, ok := workload.FindOp(name)
	if !ok {
		b.Fatalf("no such op %s", name)
	}
	r := workload.NewRNG(benchSeed)
	shape, err := sched.InferPool(cfg.H, cfg.W, cfg.C, cfg.KH, cfg.KW, cfg.Stride)
	if err != nil {
		b.Fatal(err)
	}
	plan := sched.Select(cfg.C, detect())
	pb := &poolBench{cfg: cfg, in: workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C)}
	pb.pool, err = core.NewPool(shape, plan.Words)
	if err != nil {
		b.Fatal(err)
	}
	pb.packed = bitpack.PackTensor(pb.in, plan.Words, 0, 0)
	pb.pOut = bitpack.NewPacked(shape.OutH, shape.OutW, shape.OutC, plan.Words, 0, 0)
	poolCache.Store(name, pb)
	return pb
}

func BenchmarkFig7Pool4Float(b *testing.B) {
	pb := poolFor(b, "pool4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.MaxPoolFloat(pb.in, pb.cfg.KH, pb.cfg.KW, pb.cfg.Stride, 1)
	}
}

func BenchmarkFig7Pool4BitFlow(b *testing.B) {
	pb := poolFor(b, "pool4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.pool.Forward(pb.packed, pb.pOut, exec.Serial())
	}
}

func BenchmarkFig7Pool5Float(b *testing.B) {
	pb := poolFor(b, "pool5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.MaxPoolFloat(pb.in, pb.cfg.KH, pb.cfg.KW, pb.cfg.Stride, 1)
	}
}

func BenchmarkFig7Pool5BitFlow(b *testing.B) {
	pb := poolFor(b, "pool5")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb.pool.Forward(pb.packed, pb.pOut, exec.Serial())
	}
}

// ---------------------------------------------------------------------
// Figs. 8–9: multi-core thread sweeps of the BitFlow operators. On hosts
// with fewer cores these measure the dispatch overhead; the harness adds
// the documented scaling model.

func BenchmarkFig8Conv21Threads4(b *testing.B)  { benchConvBitFlow(b, "conv2.1", 4) }
func BenchmarkFig8Conv51Threads4(b *testing.B)  { benchConvBitFlow(b, "conv5.1", 4) }
func BenchmarkFig8Fc6Threads4(b *testing.B)     { benchDenseBitFlow(b, "fc6", 4) }
func BenchmarkFig9Conv21Threads16(b *testing.B) { benchConvBitFlow(b, "conv2.1", 16) }
func BenchmarkFig9Conv21Threads64(b *testing.B) { benchConvBitFlow(b, "conv2.1", 64) }
func BenchmarkFig9Conv51Threads16(b *testing.B) { benchConvBitFlow(b, "conv5.1", 16) }
func BenchmarkFig9Conv51Threads64(b *testing.B) { benchConvBitFlow(b, "conv5.1", 64) }
func BenchmarkFig9Fc6Threads64(b *testing.B)    { benchDenseBitFlow(b, "fc6", 64) }

// ---------------------------------------------------------------------
// Fig. 10 is Fig. 7's BitFlow column against the GPU model (analytic, no
// bench needed beyond BitFlow times). Fig. 11: end-to-end VGG.

var (
	vggOnce sync.Once
	vgg16   *graph.Network
	vgg19   *graph.Network
	vggX    *tensor.Tensor
)

func vggSetup(b *testing.B) {
	vggOnce.Do(func() {
		ws := graph.RandomWeights{Seed: benchSeed}
		var err error
		if vgg16, err = graph.VGG16(detect(), ws); err != nil {
			b.Fatal(err)
		}
		if vgg19, err = graph.VGG19(detect(), ws); err != nil {
			b.Fatal(err)
		}
		vggX = workload.RandTensor(workload.NewRNG(benchSeed), 224, 224, 3)
	})
}

func BenchmarkFig11VGG16(b *testing.B) {
	vggSetup(b)
	vgg16.Infer(vggX)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vgg16.Infer(vggX)
	}
}

func BenchmarkFig11VGG19(b *testing.B) {
	vggSetup(b)
	vgg19.Infer(vggX)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vgg19.Infer(vggX)
	}
}

// ---------------------------------------------------------------------
// Ablations: the design choices DESIGN.md calls out.

// Ablation 1 — kernel width ladder: the same conv5.1-shaped operator
// forced onto each tier (what Fig. 7's vector gain isolates).
func benchConvWidth(b *testing.B, cap kernels.Width) {
	cfg, _ := workload.FindOp("conv5.1")
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(cfg.H, cfg.W, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, cfg.Pad)
	feat := detect().WithMaxWidth(cap)
	plan := sched.Select(cfg.C, feat)
	cv, err := core.NewConv(shape, plan, workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C))
	if err != nil {
		b.Fatal(err)
	}
	in := cv.NewInput()
	bitpack.PackTensorInto(workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C), in)
	out := bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, plan.Words, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.ForwardPacked(in, out, exec.Serial())
	}
}

func BenchmarkAblationWidth64(b *testing.B)  { benchConvWidth(b, kernels.W64) }
func BenchmarkAblationWidth128(b *testing.B) { benchConvWidth(b, kernels.W128) }
func BenchmarkAblationWidth256(b *testing.B) { benchConvWidth(b, kernels.W256) }
func BenchmarkAblationWidth512(b *testing.B) { benchConvWidth(b, kernels.W512) }

// Ablation 2 — fused vs staged weight transform (Table III).
func BenchmarkAblationFusedTransform(b *testing.B) {
	r := workload.NewRNG(benchSeed)
	w := workload.RandMatrix(r, 4096, 1024)
	wpr := bitpack.WordsFor(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitpack.PackMatrixBT(w, wpr)
	}
}

func BenchmarkAblationStagedTransform(b *testing.B) {
	r := workload.NewRNG(benchSeed)
	w := workload.RandMatrix(r, 4096, 1024)
	wpr := bitpack.WordsFor(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitpack.StagedPackMatrixBT(w, wpr)
	}
}

// Ablation 3 — NHWC channel packing vs NCHW-style conversion first: what
// the locality-aware layout saves on the packing path.
func BenchmarkAblationPackNHWC(b *testing.B) {
	r := workload.NewRNG(benchSeed)
	in := workload.PM1Tensor(r, 56, 56, 128)
	p := bitpack.NewPacked(56, 56, 128, 2, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitpack.PackTensorInto(in, p)
	}
}

func BenchmarkAblationPackFromNCHW(b *testing.B) {
	r := workload.NewRNG(benchSeed)
	in := workload.PM1Tensor(r, 56, 56, 128)
	nchw := in.ToNCHW()
	p := bitpack.NewPacked(56, 56, 128, 2, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// An NCHW-native framework must first interleave channels to
		// pack along C — the layout change BitFlow avoids.
		t := tensor.FromNCHW(56, 56, 128, nchw)
		bitpack.PackTensorInto(t, p)
	}
}

// Ablation 4 — zero-cost padding (pre-allocated margins) vs copying into
// an explicitly padded buffer before each conv.
func BenchmarkAblationZeroCostPad(b *testing.B) {
	cfg, _ := workload.FindOp("conv3.1")
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(cfg.H, cfg.W, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, cfg.Pad)
	plan := sched.Select(cfg.C, detect())
	cv, _ := core.NewConv(shape, plan, workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C))
	in := workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C)
	packed := cv.NewInput()
	out := bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, sched.Select(cfg.K, detect()).Words, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Producer writes the interior (simulated by the pack), conv
		// reads through the margins: no copy.
		bitpack.PackTensorInto(in, packed)
		cv.ForwardPacked(packed, out, exec.Serial())
	}
}

func BenchmarkAblationCopyPad(b *testing.B) {
	cfg, _ := workload.FindOp("conv3.1")
	r := workload.NewRNG(benchSeed)
	// Conventional first-convolution-then-padding: materialize a padded
	// float tensor, then pack it, then run an unpadded conv.
	shape, _ := sched.InferConv(cfg.H+2, cfg.W+2, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, 0)
	plan := sched.Select(cfg.C, detect())
	cv, _ := core.NewConv(shape, plan, workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C))
	in := workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C)
	packed := cv.NewInput()
	out := bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, sched.Select(cfg.K, detect()).Words, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		padded := in.PadSpatial(1, -1) // the copy the margins avoid
		bitpack.PackTensorInto(padded, packed)
		cv.ForwardPacked(packed, out, exec.Serial())
	}
}

// Ablation 5 — bgemm register blocking / tiling: kernels.BGemm with and
// without the K-tile sized to cache.
func benchBGemmTile(b *testing.B, ktile int) {
	r := workload.NewRNG(benchSeed)
	n, k := 4096, 1024
	w := workload.PM1Matrix(r, n, k)
	wPacked := bitpack.PackMatrixBT(w, bitpack.WordsFor(n))
	in := make([]uint64, bitpack.WordsFor(n))
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = r.PM1()
	}
	bitpack.PackVectorInto(in, vals)
	out := make([]int32, k)
	opts := kernels.BGemmOpts{Kernel: kernels.XorPop512, KTile: ktile}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernels.BGemm(in, 1, wPacked.Words, k, bitpack.WordsFor(n), n, out, opts)
	}
}

func BenchmarkAblationBGemmTile8(b *testing.B)    { benchBGemmTile(b, 8) }
func BenchmarkAblationBGemmTile64(b *testing.B)   { benchBGemmTile(b, 64) }
func BenchmarkAblationBGemmTile1024(b *testing.B) { benchBGemmTile(b, 1024) }

// Ablation 6 — im2col binary conv with the scalar vs a wide kernel:
// separates the layout effect from the vectorization effect.
func benchIm2colKernel(b *testing.B, f kernels.XorPopFunc) {
	r := workload.NewRNG(benchSeed)
	// 3·3·128 = 1152 bits = 18 words: divisible by 2, so W128 applies.
	in := workload.PM1Tensor(r, 28, 28, 128)
	filt := workload.PM1Filter(r, 64, 3, 3, 128)
	bc := baseline.NewBinaryIm2colConv(filt, 1, 1)
	bc.Kernel = f
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bc.Forward(in, 1)
	}
}

func BenchmarkAblationIm2colScalar(b *testing.B) { benchIm2colKernel(b, kernels.XorPop64) }
func BenchmarkAblationIm2colW128(b *testing.B)   { benchIm2colKernel(b, kernels.XorPop128) }

// Ablation 7 — folded thresholds vs plain sign: batch-norm folding must
// be free on the hot path (an integer compare either way).
func benchConvThresholds(b *testing.B, withBN bool) {
	cfg, _ := workload.FindOp("conv4.1")
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(cfg.H, cfg.W, cfg.C, cfg.K, cfg.KH, cfg.KW, cfg.Stride, cfg.Pad)
	plan := sched.Select(cfg.C, detect())
	cv, err := core.NewConv(shape, plan, workload.PM1Filter(r, cfg.K, cfg.KH, cfg.KW, cfg.C))
	if err != nil {
		b.Fatal(err)
	}
	if withBN {
		gamma := make([]float32, cfg.K)
		beta := make([]float32, cfg.K)
		mean := make([]float32, cfg.K)
		variance := make([]float32, cfg.K)
		for c := range gamma {
			gamma[c] = 1
			variance[c] = 1
			mean[c] = float32(c % 7)
		}
		th, err := core.FoldBatchNorm(gamma, beta, mean, variance, 1e-5)
		if err != nil {
			b.Fatal(err)
		}
		if err := cv.SetThresholds(th); err != nil {
			b.Fatal(err)
		}
	}
	in := cv.NewInput()
	bitpack.PackTensorInto(workload.PM1Tensor(r, cfg.H, cfg.W, cfg.C), in)
	out := bitpack.NewPacked(shape.OutH, shape.OutW, cfg.K, sched.Select(cfg.K, detect()).Words, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.ForwardPacked(in, out, exec.Serial())
	}
}

func BenchmarkAblationPlainSign(b *testing.B)       { benchConvThresholds(b, false) }
func BenchmarkAblationFoldedThreshold(b *testing.B) { benchConvThresholds(b, true) }

// Ablation 8 — multi-base conv: cost scales ~linearly with the base
// count while the weight approximation tightens (ABC-Net direction).
func benchMultiBase(b *testing.B, m int) {
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(28, 28, 256, 64, 3, 3, 1, 1)
	plan := sched.Select(256, detect())
	mc, err := core.NewMultiBaseConv(shape, plan, workload.RandFilter(r, 64, 3, 3, 256), m)
	if err != nil {
		b.Fatal(err)
	}
	in := mc.NewInput()
	bitpack.PackTensorInto(workload.PM1Tensor(r, 28, 28, 256), in)
	out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc.Forward(in, out, exec.Serial())
	}
}

func BenchmarkAblationMultiBase1(b *testing.B) { benchMultiBase(b, 1) }
func BenchmarkAblationMultiBase2(b *testing.B) { benchMultiBase(b, 2) }
func BenchmarkAblationMultiBase4(b *testing.B) { benchMultiBase(b, 4) }

// Ablation 9 — mixed-precision first layer vs binarized first layer on
// the VGG conv1.1 geometry (C = 3): the float stem costs real FLOPs but
// avoids the 61 wasted pad lanes and the input information loss.
func BenchmarkAblationFirstLayerBinary(b *testing.B) {
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(56, 56, 3, 64, 3, 3, 1, 1)
	plan := sched.Select(3, detect())
	cv, err := core.NewConv(shape, plan, workload.PM1Filter(r, 64, 3, 3, 3))
	if err != nil {
		b.Fatal(err)
	}
	in := cv.NewInput()
	bitpack.PackTensorInto(workload.PM1Tensor(r, 56, 56, 3), in)
	out := bitpack.NewPacked(shape.OutH, shape.OutW, 64, 1, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.ForwardPacked(in, out, exec.Serial())
	}
}

func BenchmarkAblationFirstLayerFloat(b *testing.B) {
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(56, 56, 3, 64, 3, 3, 1, 1)
	fc, err := core.NewFloatConv(shape, workload.RandFilter(r, 64, 3, 3, 3))
	if err != nil {
		b.Fatal(err)
	}
	in := workload.RandTensor(r, 56, 56, 3)
	out := bitpack.NewPacked(shape.OutH, shape.OutW, 64, 1, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc.Forward(in, out, exec.Serial())
	}
}

// Ablation 10 — multi-bit activations (DoReFa direction): B-bit
// activations cost B binary convolutions.
func benchMultiBit(b *testing.B, bits int) {
	r := workload.NewRNG(benchSeed)
	shape, _ := sched.InferConv(28, 28, 256, 64, 3, 3, 1, 1)
	plan := sched.Select(256, detect())
	mb, err := core.NewMultiBitConv(shape, plan, workload.RandFilter(r, 64, 3, 3, 256), bits, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	planes := mb.NewPlanes()
	mb.PackPlanes(workload.RandTensor(r, 28, 28, 256), planes)
	out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb.Forward(planes, out, exec.Serial())
	}
}

func BenchmarkAblationMultiBit1(b *testing.B) { benchMultiBit(b, 1) }
func BenchmarkAblationMultiBit2(b *testing.B) { benchMultiBit(b, 2) }
func BenchmarkAblationMultiBit4(b *testing.B) { benchMultiBit(b, 4) }

// ---------------------------------------------------------------------
// Micro-batching: per-image cost of the batched forward path (ISSUE:
// dynamic micro-batching subsystem). ReportMetric exposes ms/image so
// the amortization of per-kernel-call overhead and filter loads across
// the batch is directly readable from `go test -bench Batch`.

var (
	batchNetOnce sync.Once
	batchNet     *graph.Network
	batchXs      []*tensor.Tensor
)

func batchSetup(b *testing.B) {
	batchNetOnce.Do(func() {
		var err error
		if batchNet, err = graph.TinyVGG(detect(), graph.RandomWeights{Seed: benchSeed}); err != nil {
			b.Fatal(err)
		}
		batchNet.EnsureBatch(16)
		r := workload.NewRNG(benchSeed + 7)
		for i := 0; i < 16; i++ {
			batchXs = append(batchXs, workload.RandTensor(r, batchNet.InH, batchNet.InW, batchNet.InC))
		}
	})
}

func benchInferBatch(b *testing.B, size int) {
	batchSetup(b)
	xs := batchXs[:size]
	if _, err := batchNet.InferBatch(xs); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := batchNet.InferBatch(xs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perImage := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(size)
	b.ReportMetric(perImage/1e6, "ms/image")
}

func BenchmarkInferBatch1(b *testing.B)  { benchInferBatch(b, 1) }
func BenchmarkInferBatch2(b *testing.B)  { benchInferBatch(b, 2) }
func BenchmarkInferBatch4(b *testing.B)  { benchInferBatch(b, 4) }
func BenchmarkInferBatch8(b *testing.B)  { benchInferBatch(b, 8) }
func BenchmarkInferBatch16(b *testing.B) { benchInferBatch(b, 16) }
