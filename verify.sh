#!/usr/bin/env sh
# Tier-1 verify recipe (see ROADMAP.md). One command, run it before
# every commit:
#
#   ./verify.sh          # full: build + vet + tests + race on serving layer
#   ./verify.sh -short   # skips VGG-scale builds and training loops
set -eu

cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# The analyzer gate runs in BOTH modes: -short must never skip
# bitflow-vet, or analyzer regressions land and only CI catches them.
# This includes the compiler-backed codegen pass (escape analysis +
# check_bce over the hot call graph) and the concurrency-discipline
# passes (atomics, lockorder).
echo "== bitflow-vet ./... (repo invariants: rawgo threadsint hotalloc panicpath actuate codegen atomics lockorder ...)"
go run ./cmd/bitflow-vet ./...

echo "== go test -shuffle=on $* ./..."
go test -shuffle=on "$@" ./...

echo "== go test -race -shuffle=on ./internal/exec/... ./internal/serve/... ./internal/resilience/... ./internal/batch/... ./internal/core/... ./internal/faultinject/... ./internal/registry/... ./internal/control/..."
go test -race -shuffle=on ./internal/exec/... ./internal/serve/... ./internal/resilience/... ./internal/batch/... ./internal/core/... ./internal/faultinject/... ./internal/registry/... ./internal/control/...

echo "verify: OK"
