// Scheduler tour: show how the vector execution scheduler (paper §III-B,
// Fig. 4/6) maps channel counts to computing kernels, and what changes
// when the hardware is narrower.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"

	"bitflow"
)

func main() {
	feat := bitflow.Detect()
	fmt.Println("detected:", feat)
	fmt.Println()

	channels := []int{3, 24, 64, 96, 100, 128, 192, 256, 384, 512, 768, 1024, 4096, 25088}

	fmt.Println("kernel selection on this machine (paper §III-B rules):")
	fmt.Printf("  %-9s %-9s %-6s %s\n", "channels", "kernel", "words", "zero-pad lanes")
	for _, c := range channels {
		p := bitflow.PlanFor(c, feat)
		fmt.Printf("  %-9d %-9v %-6d %d\n", c, p.Width, p.Words, p.PadLanes())
	}

	// Emulate narrower machines, as the paper contrasts Xeon Phi
	// (AVX-512) with Core i7 (AVX2): the same channel count lands on a
	// narrower kernel when the wide tier is unavailable.
	fmt.Println("\nthe same ladder on progressively narrower machines:")
	fmt.Printf("  %-9s", "channels")
	caps := []bitflow.Width{bitflow.W512, bitflow.W256, bitflow.W128, bitflow.W64}
	for _, cap := range caps {
		fmt.Printf(" %-9v", cap)
	}
	fmt.Println()
	for _, c := range channels {
		fmt.Printf("  %-9d", c)
		for _, cap := range caps {
			f := feat
			f.MaxWidth = cap
			fmt.Printf(" %-9v", bitflow.PlanFor(c, f).Width)
		}
		fmt.Println()
	}
}
