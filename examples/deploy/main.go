// Deploy: the full train → export → save → load → serve pipeline in one
// program, using the public API plus the from-scratch trainer. This is
// the deployment story the paper motivates ("a stand-alone inference
// engine … substantially simplifies its deployment in practical
// applications"): the artifact that ships is a few KB of packed bits
// plus integer thresholds; no floats, no framework.
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"
	"log"

	"bitflow"
	"bitflow/internal/nn"
	"bitflow/internal/workload"
)

func main() {
	// 1. Train a fully binarized classifier (sign weights/activations,
	// straight-through estimator) on a synthetic 4-class task.
	r := workload.NewRNG(7)
	data := nn.Clusters(r, 2000, 16, 4, 1.0)
	train, test := data.Split(0.8)

	m := nn.NewMLP(workload.NewRNG(8), []int{16, 48, 4}, true)
	m.BinarizeInput = true
	m.Train(train, nn.TrainConfig{Epochs: 25, BatchSize: 16, LR: 0.05, Seed: 9})
	fmt.Printf("trained binarized MLP: test accuracy %.1f%%\n", 100*m.Accuracy(test))

	// 2. Export to the packed engine. Biases fold into integer sign
	// thresholds; logits are bit-exact with the trainer.
	feat := bitflow.Detect()
	net, err := nn.Export(m, "deploy-demo", feat)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Serialize — this is the deployable artifact.
	var artifact bytes.Buffer
	nBytes, err := net.Save(&artifact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed model artifact: %d bytes (float32 weights would be %d)\n",
		nBytes, net.ModelSize().FullPrecisionBytes)

	// 4. Load it "on the edge device" — here, emulating a narrower
	// machine (scalar-only kernels). Packed weights are tier-independent.
	edgeFeat := feat
	edgeFeat.MaxWidth = bitflow.W64
	served, err := bitflow.Load(&artifact, edgeFeat)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Serve. Verify against the trainer on the test split.
	agree, correct := 0, 0
	for i, x := range test.X {
		logits := served.Infer(bitflow.TensorFromSlice(1, 1, len(x), x))
		best := 0
		for c, v := range logits {
			if v > logits[best] {
				best = c
			}
		}
		if best == m.Predict(x) {
			agree++
		}
		if best == test.Y[i] {
			correct++
		}
	}
	fmt.Printf("served %d requests: %.1f%% accurate, %d/%d bit-exact with the trainer\n",
		test.Len(), 100*float64(correct)/float64(test.Len()), agree, test.Len())
}
