// Accuracy experiment: train the same architecture in full precision and
// binarized (sign weights/activations, straight-through estimator) on
// synthetic tasks of increasing difficulty — the shape of paper Table V.
// Also shows the harder ring-topology task where binarized training
// struggles most.
//
//	go run ./examples/accuracy
//	go run ./examples/accuracy -epochs 60
package main

import (
	"flag"
	"fmt"

	"bitflow/internal/nn"
	"bitflow/internal/workload"
)

var (
	flagEpochs = flag.Int("epochs", 40, "training epochs")
	flagSeed   = flag.Uint64("seed", 2018, "data/init seed")
)

func main() {
	flag.Parse()
	cfg := nn.DefaultTrainConfig()
	cfg.Epochs = *flagEpochs

	fmt.Println("Table V reproduction: full-precision vs binarized, identical architectures")
	fmt.Println()
	rows := nn.TableVExperiment(*flagSeed, cfg)
	fmt.Printf("  %-50s %-10s %-10s %s\n", "task", "float", "binarized", "gap (pp)")
	for _, r := range rows {
		fmt.Printf("  %-50s %-10.1f %-10.1f %.1f\n", r.Task, 100*r.FullPrecision, 100*r.Binarized, r.Gap())
	}
	fmt.Println()
	fmt.Println("  paper (VGG on real datasets): MNIST 99.4→98.2, CIFAR-10 92.5→87.8,")
	fmt.Println("  ImageNet top-5 88.4→76.8 — the same small-but-widening gap.")

	// Bonus: the ring task. Sign-constrained first-layer weights
	// approximate radial decision boundaries poorly, so binarized
	// training is noticeably harder here — width helps.
	fmt.Println("\nring topology (hard mode for binarized nets):")
	r := workload.NewRNG(*flagSeed)
	ringsData := nn.Rings(r, 2400, 6, 3)
	for _, hidden := range [][]int{{48, 48}, {96, 96}} {
		res := nn.CompareOnDataset(fmt.Sprintf("rings, hidden %v", hidden), ringsData, hidden, cfg, *flagSeed+9)
		fmt.Printf("  %-30s float %.1f%%  binarized %.1f%%  gap %.1fpp\n",
			res.Task, 100*res.FullPrecision, 100*res.Binarized, res.Gap())
	}
	fmt.Println("\n(model size is exact, not simulated: see `bitflow-bench table5` for the 32x")
	fmt.Println(" compression of binarized VGG-16)")
}
