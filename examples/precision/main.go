// Precision ladder: how far the binary kernels can climb back toward
// full precision. BitFlow's XOR+popcount machinery also powers the two
// accuracy-recovery schemes the paper cites — multi-base weights
// (ABC-Net: W ≈ Σ αₘ·Bₘ) and multi-bit activations (DoReFa: bit-plane
// decomposition) — at a cost linear in the base/bit count. This example
// measures both ladders on one conv shape: approximation error against
// the float convolution, and wall-clock cost.
//
//	go run ./examples/precision
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"bitflow/internal/baseline"
	"bitflow/internal/bitpack"
	"bitflow/internal/core"
	"bitflow/internal/exec"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
	"bitflow/internal/workload"
)

func main() {
	const (
		h, w, c, k = 14, 14, 256, 64
	)
	feat := sched.Detect()
	shape, err := sched.InferConv(h, w, c, k, 3, 3, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	plan := sched.Select(c, feat)
	r := workload.NewRNG(42)
	filt := workload.RandFilter(r, k, 3, 3, c)
	in := workload.RandTensor(r, h, w, c)

	fmt.Printf("conv %dx%dx%d, K=%d, 3x3 — plan: %v\n\n", h, w, c, k, plan)

	// The gold standard: float weights, float activations.
	goldFloat := baseline.ConvDirect(in, filt, 1, 1, 0, 1)

	// Ladder 1 — multi-base weights (binary ±1 activations).
	fmt.Println("multi-base weights (binary activations, W ≈ Σ αB — ABC-Net direction):")
	fmt.Printf("  %-6s %-12s %-14s %s\n", "M", "time", "weight err", "output err vs float-W conv")
	inSign := in.Sign()
	target := baseline.ConvDirect(inSign, filt, 1, 1, -1, 1) // float weights, binary input
	for _, m := range []int{1, 2, 3, 4, 6, 8} {
		mc, err := core.NewMultiBaseConv(shape, plan, filt, m)
		if err != nil {
			log.Fatal(err)
		}
		packed := mc.NewInput()
		bitpack.PackTensorInto(inSign, packed)
		out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		t0 := time.Now()
		mc.Forward(packed, out, exec.Serial())
		dur := time.Since(t0)

		bases, alphas, _ := core.FitMultiBase(filt, m)
		wErr := core.ApproxError(filt, bases, alphas)
		fmt.Printf("  %-6d %-12v %-14.4f %.4f\n", m, dur.Round(10*time.Microsecond), wErr, relErr(out, target))
	}

	// Ladder 2 — multi-bit activations (binary sign weights).
	fmt.Println("\nmulti-bit activations (binary weights, bit-plane decomposition — DoReFa direction):")
	fmt.Printf("  %-6s %-12s %s\n", "B", "time", "output err vs binary-W float-act conv")
	fb := filt.Sign()
	actTarget := baseline.ConvDirect(in, fb, 1, 1, -1, 1) // binary weights, raw activations
	for _, bits := range []int{1, 2, 3, 4, 6} {
		mb, err := core.NewMultiBitConv(shape, plan, filt, bits, -1, 1)
		if err != nil {
			log.Fatal(err)
		}
		planes := mb.NewPlanes()
		mb.PackPlanes(in, planes)
		out := tensor.New(shape.OutH, shape.OutW, shape.OutC)
		t0 := time.Now()
		mb.Forward(planes, out, exec.Serial())
		dur := time.Since(t0)
		fmt.Printf("  %-6d %-12v %.4f\n", bits, dur.Round(10*time.Microsecond), relErr(out, actTarget))
	}

	fmt.Println("\nboth ladders run on the unmodified PressedConv kernels: cost grows linearly")
	fmt.Println("with M (bases) or B (bits) while the error falls — the paper's cited route")
	fmt.Println("toward closing the Table V accuracy gap without leaving the binary compute model.")
	_ = goldFloat
}

// relErr is the relative L2 distance between two tensors.
func relErr(a, b *tensor.Tensor) float64 {
	var num, den float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		num += d * d
		den += float64(b.Data[i]) * float64(b.Data[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}
