// Quickstart: build a small binary neural network with the public API,
// run one inference, and inspect what the engine set up.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bitflow"
)

func main() {
	// 1. Probe the platform. The vector execution scheduler uses this to
	// pick a kernel tier per layer.
	feat := bitflow.Detect()
	fmt.Println("platform:", feat)

	// 2. Describe the network. Convolutions and hidden dense layers fuse
	// the sign activation; the final dense layer emits float logits.
	net, err := bitflow.NewBuilder("quickstart", 32, 32, 64, feat).
		Conv3x3("conv1", 128). // 64 input channels → scalar64 kernel
		Conv3x3("conv2", 128). // 128 channels → sse128 kernel
		Pool("pool1", 2, 2, 2).
		Flatten().
		Dense("hidden", 256).
		Dense("classes", 10).
		Build(bitflow.RandomWeights{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 3. What did the build do? Weights were binarized and bit-packed
	// once; every activation buffer is pre-allocated.
	ms := net.ModelSize()
	fmt.Printf("model: %d weights, %.0f KB binarized (%.1fx smaller than float32)\n",
		ms.Weights, float64(ms.BinarizedBytes)/1024, ms.Compression())
	for _, l := range net.Layers() {
		fmt.Printf("  layer %-8s %-5s -> %s\n", l.Name, l.Kind, l.OutDims)
	}

	// 4. Run an inference on a synthetic image.
	x := bitflow.NewTensor(32, 32, 64)
	for i := range x.Data {
		x.Data[i] = float32((i%7)-3) / 3 // arbitrary deterministic pattern
	}
	logits := net.Infer(x)

	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	fmt.Printf("logits: %v\n", logits)
	fmt.Printf("predicted class: %d\n", best)
}
