// VGG perception loop: the paper motivates BitFlow with auto-driving
// perception stacks that run several models concurrently and want BNNs
// off the GPU. This example runs a binarized VGG-16 in a low-latency
// inference loop over a stream of synthetic camera frames, tracking the
// per-frame latency budget.
//
//	go run ./examples/vggbench            # full VGG-16 (≈3 s model build)
//	go run ./examples/vggbench -tiny      # small model, instant
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"bitflow"
	"bitflow/internal/workload"
)

var (
	flagTiny    = flag.Bool("tiny", false, "use the small demo model instead of VGG-16")
	flagFrames  = flag.Int("frames", 5, "frames to process")
	flagBudget  = flag.Duration("budget", 100*time.Millisecond, "per-frame latency budget")
	flagThreads = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
)

func main() {
	flag.Parse()
	feat := bitflow.Detect()
	ws := bitflow.RandomWeights{Seed: 7}

	build := bitflow.VGG16
	if *flagTiny {
		build = bitflow.TinyVGG
	}
	t0 := time.Now()
	net, err := build(feat, ws)
	if err != nil {
		log.Fatal(err)
	}
	net.Threads = *flagThreads
	ms := net.ModelSize()
	fmt.Printf("loaded %s in %v: %.1f MB packed weights (%.1fx compression), %.1f MB activations pre-allocated\n",
		net.Name, time.Since(t0).Round(time.Millisecond),
		float64(ms.BinarizedBytes)/(1<<20), ms.Compression(),
		float64(net.ActivationBytes())/(1<<20))

	// Synthetic camera frames: deterministic pseudo-random pixel data at
	// the network's input geometry.
	rng := workload.NewRNG(99)
	frames := make([]*bitflow.Tensor, *flagFrames)
	for i := range frames {
		frames[i] = workload.RandTensor(rng, net.InH, net.InW, net.InC)
	}

	net.Infer(frames[0]) // warm-up

	fmt.Printf("\nprocessing %d frames with a %v budget, %d thread(s):\n", len(frames), *flagBudget, net.Threads)
	var worst time.Duration
	var missed int
	for i, f := range frames {
		t := time.Now()
		logits := net.Infer(f)
		lat := time.Since(t)
		if lat > worst {
			worst = lat
		}
		status := "ok"
		if lat > *flagBudget {
			status = "MISSED"
			missed++
		}
		best := 0
		for j, v := range logits {
			if v > logits[best] {
				best = j
			}
		}
		fmt.Printf("  frame %d: %8.2f ms  class=%-4d %s\n",
			i, float64(lat)/float64(time.Millisecond), best, status)
	}
	fmt.Printf("\nworst-case latency %.2f ms; %d/%d frames missed the budget.\n",
		float64(worst)/float64(time.Millisecond), missed, len(frames))
	fmt.Println("(the paper's 64-core Xeon Phi runs binarized VGG-16 in 11.82 ms — 1.1x faster")
	fmt.Println(" than a GTX 1080 running the float model, freeing the GPU for other tasks)")
}
