// Package bitflow is a stand-alone CPU inference engine for Binary
// Neural Networks, reproducing "BitFlow: Exploiting Vector Parallelism
// for Binary Neural Networks on CPU" (Hu et al., IPDPS 2018).
//
// The engine optimizes at three levels:
//
//   - gemm level: binary GEMM with tiling, unrolling and a fused
//     binarize+bit-pack+transpose weight transform;
//   - operator level: the PressedConv algorithm — channel-dimension
//     bit-packing in NHWC layout, XOR+popcount inner products, a vector
//     execution scheduler that picks the kernel tier per channel count,
//     and zero-cost spatial padding via pre-allocated margins;
//   - network level: one-time weight packing and full pre-allocation of
//     the activation buffer chain from the static graph.
//
// Quick start:
//
//	feat := bitflow.Detect()
//	net, err := bitflow.NewBuilder("demo", 32, 32, 64, feat).
//		Conv3x3("conv1", 64).
//		Pool("pool1", 2, 2, 2).
//		Dense("fc", 10).
//		Build(bitflow.RandomWeights{Seed: 42})
//	if err != nil { ... }
//	logits := net.Infer(x) // x: *bitflow.Tensor, 32×32×64 NHWC
//
// See examples/ for runnable programs and cmd/bitflow-bench for the
// harness regenerating the paper's figures and tables.
package bitflow

import (
	"io"

	"bitflow/internal/exec"
	"bitflow/internal/graph"
	"bitflow/internal/kernels"
	"bitflow/internal/sched"
	"bitflow/internal/tensor"
)

// Version identifies this release of the engine.
const Version = "1.0.0"

// Tensor is a dense float32 feature map in NHWC layout (batch 1).
type Tensor = tensor.Tensor

// Matrix is a dense row-major float32 matrix (dense-layer weights).
type Matrix = tensor.Matrix

// Filter is a bank of convolution filters in K×KH×KW×C layout.
type Filter = tensor.Filter

// NewTensor allocates a zeroed H×W×C tensor.
func NewTensor(h, w, c int) *Tensor { return tensor.New(h, w, c) }

// TensorFromSlice wraps an NHWC float slice without copying.
func TensorFromSlice(h, w, c int, data []float32) *Tensor {
	return tensor.FromSlice(h, w, c, data)
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return tensor.NewMatrix(rows, cols) }

// NewFilter allocates a zeroed K×KH×KW×C filter bank.
func NewFilter(k, kh, kw, c int) *Filter { return tensor.NewFilter(k, kh, kw, c) }

// Features describes the vector capabilities the scheduler may use.
type Features = sched.Features

// Width identifies a kernel tier (64/128/256/512-bit).
type Width = kernels.Width

// Kernel tiers, widest to narrowest.
const (
	W512 = kernels.W512
	W256 = kernels.W256
	W128 = kernels.W128
	W64  = kernels.W64
)

// Detect probes the current platform's vector capabilities. Set the
// BITFLOW_MAX_WIDTH environment variable (64/128/256/512) to cap the
// widest tier, e.g. to emulate an SSE-only machine.
func Detect() Features { return sched.Detect() }

// KernelPlan reports the scheduler's decision for one channel count —
// the operator→kernel mapping of the paper's Fig. 6.
type KernelPlan = sched.Plan

// PlanFor returns the kernel plan the vector execution scheduler selects
// for a given channel (or neuron) count.
func PlanFor(channels int, feat Features) KernelPlan { return sched.Select(channels, feat) }

// Network is a compiled binary neural network with pre-packed weights
// and a pre-allocated buffer chain. Not safe for concurrent Infer calls
// on the same instance.
type Network = graph.Network

// Builder assembles a sequential binary network.
type Builder = graph.Builder

// NewBuilder starts a network taking inH×inW×inC inputs.
func NewBuilder(name string, inH, inW, inC int, feat Features) *Builder {
	return graph.NewBuilder(name, inH, inW, inC, feat)
}

// WeightSource supplies float weights per layer; the engine binarizes
// and bit-packs them once at build time.
type WeightSource = graph.WeightSource

// BNParams holds batch-norm inference parameters for one layer.
type BNParams = graph.BNParams

// BatchNormSource is an optional WeightSource extension supplying
// batch-norm parameters; the engine folds them into integer sign
// thresholds (hidden layers) or a float affine (classifier) at build
// time, so no batch-norm arithmetic survives into inference.
type BatchNormSource = graph.BatchNormSource

// BiasSource is an optional WeightSource extension supplying per-channel
// biases, folded the same way.
type BiasSource = graph.BiasSource

// RandomWeights is a deterministic WeightSource keyed by seed and layer
// name — useful for benchmarking, where speed is independent of the
// trained values.
type RandomWeights = graph.RandomWeights

// VGG16 builds binarized VGG-16 (224×224×3 input, 1000 classes).
func VGG16(feat Features, ws WeightSource) (*Network, error) { return graph.VGG16(feat, ws) }

// VGG19 builds binarized VGG-19.
func VGG19(feat Features, ws WeightSource) (*Network, error) { return graph.VGG19(feat, ws) }

// TinyVGG builds a small VGG-shaped network (32×32×3 input, 10 classes)
// for demos and tests.
func TinyVGG(feat Features, ws WeightSource) (*Network, error) { return graph.TinyVGG(feat, ws) }

// Load deserializes a model previously written with Network.Save. The
// packed weights are kernel-tier independent: a model saved on one
// machine loads bit-identically on any other; only the kernel selection
// (from feat) differs.
func Load(r io.Reader, feat Features) (*Network, error) { return graph.Load(r, feat) }

// ExecPool is a persistent worker pool for multi-core operator dispatch.
// One process-wide pool can be shared by any number of networks; each
// inference borrows at most its context's thread budget from it.
type ExecPool = exec.Pool

// ExecCtx is an immutable execution context: a thread budget, an
// optional pool, an optional cancellation context and an optional
// per-layer timing observer. Attach one with Network.SetExec.
type ExecCtx = exec.Ctx

// NewExecPool starts a pool of n persistent workers (Close releases
// them). Use ExecDefault for a lazily created GOMAXPROCS-sized pool.
func NewExecPool(n int) *ExecPool { return exec.NewPool(n) }

// ExecDefault returns the process-wide GOMAXPROCS-sized pool, creating
// it on first use.
func ExecDefault() *ExecPool { return exec.Default() }

// Pooled returns a context running up to threads-wide parallel sections
// on p's persistent workers. The chunk split is identical to every other
// dispatch mode, so logits are bit-identical across all of them.
func Pooled(p *ExecPool, threads int) *ExecCtx { return exec.Pooled(p, threads) }

// Serial returns the single-threaded execution context.
func Serial() *ExecCtx { return exec.Serial() }
