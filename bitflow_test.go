package bitflow_test

import (
	"bytes"
	"testing"

	"bitflow"
	"bitflow/internal/workload"
)

func TestPublicQuickstart(t *testing.T) {
	feat := bitflow.Detect()
	net, err := bitflow.NewBuilder("demo", 16, 16, 64, feat).
		Conv3x3("conv1", 64).
		Pool("pool1", 2, 2, 2).
		Dense("fc", 10).
		Build(bitflow.RandomWeights{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	x := bitflow.NewTensor(16, 16, 64)
	r := workload.NewRNG(1)
	for i := range x.Data {
		x.Data[i] = 2*r.Float32() - 1
	}
	logits := net.Infer(x)
	if len(logits) != 10 {
		t.Fatalf("logits %d", len(logits))
	}
}

func TestPublicPlanFor(t *testing.T) {
	feat := bitflow.Detect()
	feat.MaxWidth = bitflow.W512
	plans := map[int]bitflow.Width{3: bitflow.W64, 64: bitflow.W64, 128: bitflow.W128, 256: bitflow.W256, 512: bitflow.W512}
	for c, want := range plans {
		if p := bitflow.PlanFor(c, feat); p.Width != want {
			t.Errorf("PlanFor(%d).Width = %v want %v", c, p.Width, want)
		}
	}
}

func TestPublicTinyVGG(t *testing.T) {
	net, err := bitflow.TinyVGG(bitflow.Detect(), bitflow.RandomWeights{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if net.Classes != 10 {
		t.Errorf("classes %d", net.Classes)
	}
	ms := net.ModelSize()
	if ms.Compression() < 20 {
		t.Errorf("compression %.1f", ms.Compression())
	}
}

func TestPublicConstructors(t *testing.T) {
	if m := bitflow.NewMatrix(2, 3); m.Rows != 2 || m.Cols != 3 {
		t.Error("NewMatrix")
	}
	if f := bitflow.NewFilter(1, 3, 3, 8); f.K != 1 || f.C != 8 {
		t.Error("NewFilter")
	}
	if x := bitflow.TensorFromSlice(1, 1, 2, []float32{1, 2}); x.At(0, 0, 1) != 2 {
		t.Error("TensorFromSlice")
	}
	if bitflow.Version == "" {
		t.Error("empty version")
	}
}

func TestPublicBatchNormAndFloatConv(t *testing.T) {
	feat := bitflow.Detect()
	net, err := bitflow.NewBuilder("mixed", 16, 16, 3, feat).
		FloatConv("stem", 64, 3, 3, 1, 1).
		BatchNorm("stem/bn").
		Conv3x3("conv1", 64).
		Pool("pool1", 2, 2, 2).
		Dense("fc", 10).
		Build(bitflow.RandomWeights{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x := bitflow.NewTensor(16, 16, 3)
	r := workload.NewRNG(10)
	for i := range x.Data {
		x.Data[i] = 2*r.Float32() - 1
	}
	if got := net.Infer(x); len(got) != 10 {
		t.Fatalf("logits %d", len(got))
	}
}

func TestPublicSaveLoad(t *testing.T) {
	feat := bitflow.Detect()
	net, err := bitflow.TinyVGG(feat, bitflow.RandomWeights{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := bitflow.Load(&buf, feat)
	if err != nil {
		t.Fatal(err)
	}
	x := bitflow.NewTensor(32, 32, 3)
	r := workload.NewRNG(12)
	for i := range x.Data {
		x.Data[i] = 2*r.Float32() - 1
	}
	want := net.Infer(x)
	got := loaded.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logit %d differs after save/load", i)
		}
	}
}

func TestPublicClone(t *testing.T) {
	net, err := bitflow.TinyVGG(bitflow.Detect(), bitflow.RandomWeights{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	clone := net.Clone()
	x := bitflow.NewTensor(32, 32, 3)
	want := net.Infer(x)
	got := clone.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clone logit %d differs", i)
		}
	}
}

// TestPublicExec exercises the execution-context exports: a shared pool
// attached through the facade must leave logits bit-identical to the
// default serial path.
func TestPublicExec(t *testing.T) {
	feat := bitflow.Detect()
	net, err := bitflow.NewBuilder("execdemo", 16, 16, 64, feat).
		Conv3x3("conv1", 64).
		Pool("pool1", 2, 2, 2).
		Dense("fc", 10).
		Build(bitflow.RandomWeights{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	x := bitflow.NewTensor(16, 16, 64)
	r := workload.NewRNG(2)
	for i := range x.Data {
		x.Data[i] = 2*r.Float32() - 1
	}
	want := net.Infer(x)

	p := bitflow.NewExecPool(3)
	defer p.Close()
	net.SetExec(bitflow.Pooled(p, 4))
	got := net.Infer(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled logit %d = %v, want %v", i, got[i], want[i])
		}
	}
	if p.Report().Dispatches == 0 {
		t.Error("no dispatches reached the facade pool")
	}

	net.SetExec(bitflow.Serial())
	if rep := bitflow.ExecDefault().Report(); rep.Workers < 1 {
		t.Errorf("default pool reports %d workers", rep.Workers)
	}
}
